// Sharded-store robustness battery (`ctest -L store`): epoch-domain
// independence, admission/shedding, deadline statuses, per-shard isolation
// under overload, manifest counter round-trip, and a native multi-threaded
// soak that exercises one epoch-reclamation domain per shard (the ASAN CI
// job's target — a cross-shard reclamation bug is a real use-after-free).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "ctx/native_ctx.hpp"
#include "ctx/sim_ctx.hpp"
#include "driver/experiment.hpp"
#include "obs/manifest.hpp"
#include "store/admission.hpp"
#include "store/sharded_store.hpp"
#include "trees/registry.hpp"
#include "util/epoch.hpp"
#include "util/rng.hpp"

namespace euno::store {
namespace {

sim::MachineConfig test_machine() {
  sim::MachineConfig cfg;
  cfg.arena_bytes = 256ull << 20;
  return cfg;
}

const trees::TreeEntry& entry(const char* name) {
  const trees::TreeEntry* e = trees::tree_registry().by_name(name);
  EXPECT_NE(e, nullptr) << name;
  return *e;
}

template <class Ctx>
typename ShardedStore<Ctx>::TreeFactory factory_for(const trees::TreeEntry& e);

template <>
ShardedStore<ctx::SimCtx>::TreeFactory factory_for<ctx::SimCtx>(
    const trees::TreeEntry& e) {
  return [&e](ctx::SimCtx& c) { return e.make_sim(c, trees::TreeBuildOptions{}); };
}

template <>
ShardedStore<ctx::NativeCtx>::TreeFactory factory_for<ctx::NativeCtx>(
    const trees::TreeEntry& e) {
  return
      [&e](ctx::NativeCtx& c) { return e.make_native(c, trees::TreeBuildOptions{}); };
}

workload::Op put_op(trees::Key k, trees::Value v) {
  workload::Op op{};
  op.type = workload::OpType::kPut;
  op.key = k;
  op.value = v;
  return op;
}

workload::Op get_op(trees::Key k) {
  workload::Op op{};
  op.type = workload::OpType::kGet;
  op.key = k;
  return op;
}

// ---------------------------------------------------------------------------
// Epoch domains (satellite: EpochManager is instantiable — one domain per
// shard — and domains are fully independent).

TEST(EpochDomains, RetireAndFreeIndependentOfOtherDomainPins) {
  EpochManager a(4), b(4);

  // Domain A has a long-lived reader pinned; that must not stop B from
  // advancing and freeing — the whole point of per-shard domains.
  a.enter(0);

  int freed_b = 0;
  {
    auto guard = b.pin(0);
    b.retire(0, &freed_b, [](void* p) { ++*static_cast<int*>(p); });
  }
  // Unpinned now: advance twice (retire epoch < min active), then flush via
  // a second retirement cycle on the same slot — freeing is per-slot, so the
  // cadence-triggered sweep must run on the tid that holds the limbo entry.
  b.try_advance();
  b.try_advance();
  {
    auto guard = b.pin(0);
    static int dummy;
    for (int i = 0; i < 70; ++i) {  // cross the advance-interval cadence
      b.retire(0, &dummy, [](void*) {});
    }
  }
  EXPECT_EQ(freed_b, 1) << "domain B could not reclaim while A held a pin";
  EXPECT_GT(b.global_epoch(), a.global_epoch())
      << "B's epoch should advance past A's pinned epoch";

  // Conversely, A's own retiree stays in limbo while its reader is pinned...
  int freed_a = 0;
  a.retire(0, &freed_a, [](void* p) { ++*static_cast<int*>(p); });
  a.try_advance();
  EXPECT_EQ(freed_a, 0);
  // ...and drains once the pin drops.
  a.exit(0);
  a.drain_all();
  EXPECT_EQ(freed_a, 1);
  EXPECT_EQ(a.freed_count(), 1u);
}

// ---------------------------------------------------------------------------
// Admission primitives.

TEST(TokenBucket, RefillsFromElapsedClock) {
  TokenBucket tb;
  tb.configure(/*tokens_per_unit=*/0.01, /*burst=*/2, /*now=*/0);
  ASSERT_TRUE(tb.enabled());
  EXPECT_TRUE(tb.try_take(0));   // burst
  EXPECT_TRUE(tb.try_take(0));   // burst
  EXPECT_FALSE(tb.try_take(0));  // empty, no time elapsed
  EXPECT_FALSE(tb.try_take(50));   // 0.5 tokens accrued
  EXPECT_TRUE(tb.try_take(110));   // >1 token accrued
  EXPECT_FALSE(tb.try_take(111));  // spent again

  TokenBucket off;
  off.configure(0, 1, 0);
  EXPECT_FALSE(off.enabled());
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(off.try_take(0));
}

TEST(OverloadMonitor, StagedDescentAndRecovery) {
  StoreOptions o;
  o.shards = 1;
  o.monitor_window = 4;
  o.shed_on_pct = 50;
  o.degrade_windows = 2;
  OverloadMonitor m;
  m.configure(o);
  ASSERT_EQ(m.state(), ShardState::kHealthy);

  auto feed_window = [&](int sheds) {
    bool advanced = false;
    for (int i = 0; i < 4; ++i) advanced |= m.note(i < sheds);
    return advanced;
  };

  EXPECT_FALSE(feed_window(1));  // 25% < 50%: stays healthy
  EXPECT_EQ(m.state(), ShardState::kHealthy);
  EXPECT_TRUE(feed_window(2));  // 50%: healthy -> shedding, stage-advancing
  EXPECT_EQ(m.state(), ShardState::kShedding);
  EXPECT_FALSE(feed_window(0));  // idle window: recovers
  EXPECT_EQ(m.state(), ShardState::kHealthy);

  // Sustained saturation: shedding, then terminal on the 2nd saturated
  // window in a row.
  EXPECT_TRUE(feed_window(4));
  EXPECT_EQ(m.state(), ShardState::kShedding);
  EXPECT_TRUE(feed_window(4));
  EXPECT_EQ(m.state(), ShardState::kShardLockOnly);
  // Terminal: an idle window no longer recovers.
  EXPECT_FALSE(feed_window(0));
  EXPECT_EQ(m.state(), ShardState::kShardLockOnly);
}

// ---------------------------------------------------------------------------
// ShardedStore on the simulator.

TEST(ShardedStoreSim, RoutesEveryKeyToItsShardAndBack) {
  sim::Simulation simulation(test_machine());
  ctx::SimCtx c(simulation, 0);
  StoreOptions o;
  o.shards = 4;
  ShardedStore<ctx::SimCtx> store(c, o, StoreRuntime{},
                                  factory_for<ctx::SimCtx>(entry("euno")));

  constexpr int kKeys = 512;
  std::vector<int> per_shard(4, 0);
  for (trees::Key k = 0; k < kKeys; ++k) {
    const int s = store.shard_of(k);
    ASSERT_GE(s, 0);
    ASSERT_LT(s, 4);
    per_shard[static_cast<std::size_t>(s)]++;
    const auto r = store.execute(c, put_op(k, k * 3 + 1), c.now(), nullptr);
    ASSERT_EQ(r.status, StoreStatus::kOk);
  }
  // mix64 routing must actually spread keys (not degenerate to one shard).
  for (int s = 0; s < 4; ++s) EXPECT_GT(per_shard[static_cast<std::size_t>(s)], 0);

  for (trees::Key k = 0; k < kKeys; ++k) {
    const auto r = store.execute(c, get_op(k), c.now(), nullptr);
    ASSERT_EQ(r.status, StoreStatus::kOk) << k;
    ASSERT_EQ(r.value, k * 3 + 1) << k;
  }
  EXPECT_EQ(store.execute(c, get_op(1u << 20), c.now(), nullptr).status,
            StoreStatus::kNotFound);
  EXPECT_EQ(store.size_slow(), static_cast<std::size_t>(kKeys));
  store.check_invariants();

  const auto t = store.accumulate();
  EXPECT_EQ(t.admitted, 2ull * kKeys + 1);
  EXPECT_EQ(t.shed, 0u);
  EXPECT_EQ(t.deadline_exceeded, 0u);
  store.destroy(c);
}

TEST(ShardedStoreSim, TokenBucketShedsInsteadOfQueueing) {
  sim::Simulation simulation(test_machine());
  ctx::SimCtx c(simulation, 0);
  StoreOptions o;
  o.shards = 1;  // single shard: every op faces the same bucket
  o.shedding = true;
  o.shard_rate_mops = 1e-9;  // effectively no refill at sim-time scale
  o.burst = 3;
  ShardedStore<ctx::SimCtx> store(c, o, StoreRuntime{},
                                  factory_for<ctx::SimCtx>(entry("euno")));

  int ok = 0, shed = 0;
  for (trees::Key k = 0; k < 10; ++k) {
    const auto r = store.execute(c, put_op(k, 1), c.now(), nullptr);
    (r.status == StoreStatus::kShedded ? shed : ok)++;
    if (r.status == StoreStatus::kShedded) {
      EXPECT_EQ(r.status, StoreStatus::kShedded);
    }
  }
  EXPECT_EQ(ok, 3);    // the free burst
  EXPECT_EQ(shed, 7);  // everything past it is rejected, never queued
  const auto t = store.accumulate();
  EXPECT_EQ(t.admitted, 3u);
  EXPECT_EQ(t.shed, 7u);
  // Shedding rejects at the gate: the trees saw only the admitted ops.
  EXPECT_EQ(store.size_slow(), 3u);

  // With shedding off the same config admits everything (knobs default off).
  StoreOptions open = o;
  open.shedding = false;
  ShardedStore<ctx::SimCtx> store2(c, open, StoreRuntime{},
                                   factory_for<ctx::SimCtx>(entry("euno")));
  for (trees::Key k = 0; k < 10; ++k) {
    ASSERT_EQ(store2.execute(c, put_op(k, 1), c.now(), nullptr).status,
              StoreStatus::kOk);
  }
  EXPECT_EQ(store2.accumulate().shed, 0u);
  store.destroy(c);
  store2.destroy(c);
}

TEST(ShardedStoreSim, DeadlinePrecheckRejectsDoomedOps) {
  sim::Simulation simulation(test_machine());
  StoreOptions o;
  o.shards = 2;
  o.deadline_us = 50;  // 50k cycles at StoreRuntime's 1 GHz: roomy for one op
  // Host-side clocks only advance inside fibers; run the scenario there.
  simulation.spawn(0, [&](int core) {
    ctx::SimCtx c(simulation, core);
    ShardedStore<ctx::SimCtx> store(c, o, StoreRuntime{},
                                    factory_for<ctx::SimCtx>(entry("euno")));
    const std::uint64_t scheduled = c.now();
    ASSERT_EQ(store.execute(c, put_op(7, 7), scheduled, nullptr).status,
              StoreStatus::kOk);
    // Burn well past the 50k-cycle budget, then present an op still
    // stamped with the old arrival time: rejected before touching a tree.
    simulation.charge(100000);
    const auto r = store.execute(c, put_op(9, 9), scheduled, nullptr);
    EXPECT_EQ(r.status, StoreStatus::kDeadlineExceeded);
    const auto t = store.accumulate();
    EXPECT_EQ(t.deadline_exceeded, 1u);
    EXPECT_EQ(t.admitted, 1u);
    // A fresh arrival is unaffected.
    EXPECT_EQ(store.execute(c, put_op(9, 9), c.now(), nullptr).status,
              StoreStatus::kOk);
    store.destroy(c);
  });
  simulation.run();
}

TEST(ShardedStoreSim, MidFlightDeadlineUnwindsTheRetryLoop) {
  // Every HTM attempt aborts (spurious injection at 100%), so the retry loop
  // burns its budget charging abort penalties and backoff — with a ~1000
  // cycle deadline armed the op must unwind as kDeadlineExceeded instead of
  // grinding through to the fallback lock.
  sim::MachineConfig cfg = test_machine();
  cfg.fault.spurious_abort_bp = 10000;
  sim::Simulation simulation(cfg);
  StoreOptions o;
  o.shards = 1;
  o.deadline_us = 1;
  simulation.spawn(0, [&](int core) {
    ctx::SimCtx c(simulation, core);
    ShardedStore<ctx::SimCtx> store(c, o, StoreRuntime{},
                                    factory_for<ctx::SimCtx>(entry("htm-bptree")));
    int exceeded = 0;
    for (trees::Key k = 0; k < 20; ++k) {
      const auto r = store.execute(c, put_op(k, 1), c.now(), nullptr);
      ASSERT_TRUE(r.status == StoreStatus::kOk ||
                  r.status == StoreStatus::kDeadlineExceeded);
      if (r.status == StoreStatus::kDeadlineExceeded) exceeded++;
    }
    EXPECT_GT(exceeded, 0) << "no op hit its deadline mid-flight";
    // Mid-flight unwinds are counted by the retry loop (TxStats), not the
    // store pre-check counter — no double counting.
    EXPECT_EQ(store.accumulate().deadline_exceeded, 0u);
    // The store survives abandoned ops: subsequent ops still complete.
    store.check_invariants();
    store.destroy(c);
  });
  simulation.run();
}

TEST(ShardedStoreSim, OverloadedShardDegradesAloneOthersStayHealthy) {
  sim::Simulation simulation(test_machine());
  ctx::SimCtx c(simulation, 0);
  StoreOptions o;
  o.shards = 4;
  o.shedding = true;
  o.shard_rate_mops = 1e-9;  // no refill: every post-burst op sheds
  o.burst = 1;
  o.monitor_window = 8;  // hair-trigger monitor
  o.shed_on_pct = 50;
  o.degrade_windows = 2;
  ShardedStore<ctx::SimCtx> store(c, o, StoreRuntime{},
                                  factory_for<ctx::SimCtx>(entry("euno")));

  // Find keys for one victim shard and hammer only those.
  const int victim = store.shard_of(0);
  std::vector<trees::Key> victim_keys;
  for (trees::Key k = 0; victim_keys.size() < 64; ++k) {
    if (store.shard_of(k) == victim) victim_keys.push_back(k);
  }
  for (const trees::Key k : victim_keys) {
    (void)store.execute(c, put_op(k, 1), c.now(), nullptr);
  }

  EXPECT_EQ(store.shard_state(victim), ShardState::kShardLockOnly)
      << "sustained saturation must walk the victim to the terminal stage";
  int healthy = 0;
  for (int s = 0; s < o.shards; ++s) {
    if (s != victim) {
      EXPECT_EQ(store.shard_state(s), ShardState::kHealthy) << s;
      healthy++;
    }
  }
  EXPECT_EQ(healthy, 3);
  EXPECT_GE(store.accumulate().degradations, 2u);  // shedding + terminal

  // Isolation: the other shards still admit (each has its own untouched
  // burst token) — a degraded shard cannot drag its neighbours down.
  int other_admitted = 0;
  for (trees::Key k = 0; k < 256 && other_admitted == 0; ++k) {
    if (store.shard_of(k) == victim) continue;
    if (store.execute(c, put_op(k, 2), c.now(), nullptr).status ==
        StoreStatus::kOk) {
      other_admitted++;
    }
  }
  EXPECT_GT(other_admitted, 0);
  // The victim still serves under its serial lock (try-lock admits when
  // uncontended and the bucket allows... rate is zero here, so it sheds —
  // but it must *answer*, not wedge).
  const auto r = store.execute(c, put_op(victim_keys[0], 3), c.now(), nullptr);
  EXPECT_EQ(r.status, StoreStatus::kShedded);
  store.destroy(c);
}

// ---------------------------------------------------------------------------
// Driver integration: counters surface in ExperimentResult and round-trip
// through the manifest; disabled store leaves manifests untouched.

driver::ExperimentSpec store_spec() {
  driver::ExperimentSpec spec;
  spec.tree = driver::TreeKind::kEuno;
  spec.threads = 4;
  spec.ops_per_thread = 150;
  spec.workload.key_range = 1 << 12;
  spec.workload.scramble = false;
  spec.preload = 1 << 11;
  spec.machine.arena_bytes = 128ull << 20;
  spec.store.shards = 4;
  return spec;
}

std::string read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  if (f == nullptr) return {};
  std::string out;
  char buf[65536];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

TEST(StoreExperiment, CountersRoundTripThroughManifest) {
  auto spec = store_spec();
  spec.store.shedding = true;
  spec.store.shard_rate_mops = 1e-9;  // shed nearly everything
  spec.store.burst = 4;
  spec.store.deadline_us = 1000;
  const auto r = driver::run_sim_experiment(spec);
  EXPECT_GT(r.admitted_ops, 0u);
  EXPECT_GT(r.shed_ops, 0u);
  EXPECT_EQ(r.admitted_ops + r.shed_ops + r.deadline_exceeded,
            4u * 150u);  // every issued op is accounted exactly once

  const std::string path = ::testing::TempDir() + "/euno_store_manifest.json";
  ASSERT_TRUE(obs::write_manifest(path, "store_test", &spec, &r, 1));
  const std::string doc = read_file(path);
  for (const char* key : {"\"store\"", "\"shards\":4", "\"shedding\":true",
                          "\"admitted_ops\"", "\"shed_ops\"",
                          "\"deadline_exceeded\"", "\"shard_degradations\""}) {
    EXPECT_NE(doc.find(key), std::string::npos) << "missing " << key;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"shed_ops\":%llu",
                static_cast<unsigned long long>(r.shed_ops));
  EXPECT_NE(doc.find(buf), std::string::npos)
      << "shed_ops value did not round-trip";
  std::remove(path.c_str());

  // Determinism: the same spec reproduces every store counter exactly.
  const auto r2 = driver::run_sim_experiment(spec);
  EXPECT_EQ(r2.admitted_ops, r.admitted_ops);
  EXPECT_EQ(r2.shed_ops, r.shed_ops);
  EXPECT_EQ(r2.deadline_exceeded, r.deadline_exceeded);
  EXPECT_EQ(r2.sim_cycles, r.sim_cycles);
}

TEST(StoreExperiment, DisabledStoreKeepsManifestFreeOfStoreKeys) {
  auto spec = store_spec();
  spec.store = store::StoreOptions{};  // off: the golden-manifest contract
  const auto r = driver::run_sim_experiment(spec);
  EXPECT_EQ(r.admitted_ops, 0u);
  EXPECT_EQ(r.shed_ops, 0u);
  const std::string path = ::testing::TempDir() + "/euno_nostore_manifest.json";
  ASSERT_TRUE(obs::write_manifest(path, "store_test", &spec, &r, 1));
  const std::string doc = read_file(path);
  for (const char* key : {"\"store\"", "\"admitted_ops\"", "\"shed_ops\"",
                          "\"deadline_exceeded\"", "\"shard_degradations\""}) {
    EXPECT_EQ(doc.find(key), std::string::npos) << "stray key " << key;
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Native engine: real threads against per-shard trees — and with them one
// epoch-reclamation domain per shard. The erase-heavy mix keeps every
// domain's retire/free pipeline busy; under ASAN a reclamation bug that
// crosses shard domains is a hard use-after-free.

TEST(ShardedStoreNative, MultiThreadedSoakAcrossEpochDomains) {
  ctx::NativeEnv env;
  ctx::NativeCtx setup(env, 0);
  StoreOptions o;
  o.shards = 4;
  o.deadline_us = 200;  // generous: arms the native deadline path
  ShardedStore<ctx::NativeCtx> store(setup, o, StoreRuntime{},
                                     factory_for<ctx::NativeCtx>(entry("euno")));
  for (trees::Key k = 0; k < 2048; k += 2) store.preload_put(setup, k, k);

  constexpr int kThreads = 4;
  constexpr int kOps = 4000;
  std::atomic<std::uint64_t> completed{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      ctx::NativeCtx c(env, t);
      Xoshiro256 rng(77 + static_cast<std::uint64_t>(t));
      std::vector<trees::KV> buf(16);
      for (int i = 0; i < kOps; ++i) {
        workload::Op op{};
        op.key = rng.next_bounded(2048);
        switch (rng.next_bounded(4)) {
          case 0:
            op.type = workload::OpType::kGet;
            break;
          case 1:
            op.type = workload::OpType::kDelete;
            break;
          case 2:
            op.type = workload::OpType::kScan;
            op.scan_len = 16;
            break;
          default:
            op.type = workload::OpType::kPut;
            op.value = rng.next();
            break;
        }
        const auto r = store.execute(c, op, c.now(), buf.data());
        if (r.status == StoreStatus::kOk || r.status == StoreStatus::kNotFound) {
          completed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  EXPECT_GT(completed.load(), 0u);
  store.check_invariants();
  const auto t = store.accumulate();
  EXPECT_EQ(t.shed, 0u);  // no gate configured: nothing may be rejected
  store.destroy(setup);
}

}  // namespace
}  // namespace euno::store
