// Bytes-domain conformance (`ctest -L strkey`): every tree registered with
// string-key support is swept through a string-native oracle battery on BOTH
// execution contexts, via the registry's AnyStrTree factories — the same
// type-erased surface the driver's bytes path dispatches through.
//
// This file is the string-semantics complement to the u64-codec coverage in
// registry_conformance_test.cpp (which already runs the same trees through
// their order-preserving codec surface): here keys are genuinely variable
// length, payloads ride behind the value indirection, and the torture corpus
// concentrates on what the codec cannot reach — long shared prefixes that
// defeat the in-node 8-byte slice, sign-bit bytes (0x80/0xFF) that would
// expose a signed compare anywhere in the stack, and suffix-only key
// differences beyond the first 8 bytes.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "ctx/native_ctx.hpp"
#include "ctx/sim_ctx.hpp"
#include "tree_conformance.hpp"
#include "trees/registry.hpp"
#include "util/memstats.hpp"
#include "workload/strkeys.hpp"

namespace euno::tests {
namespace {

using trees::TreeBuildOptions;
using trees::TreeEntry;
using trees::node::BytesView;

/// The bytes-capable registry entries (the parameter domain of this file).
std::vector<TreeEntry> str_entries() {
  std::vector<TreeEntry> out;
  for (const auto& e : trees::tree_registry().entries()) {
    if (e.caps.key_domain == trees::KeyDomain::kBytes) out.push_back(e);
  }
  return out;
}

/// Shared-prefix / sign-bit torture corpus. Every key shares the same first
/// 8 bytes ("pfx8----"), so the in-node prefix slice never discriminates and
/// every comparison must resolve through the out-of-line suffix tie-break.
/// High bytes (0x80, 0xFF) sit where a signed char compare would misorder.
std::vector<std::string> torture_keys() {
  const std::string p8 = "pfx8----";
  std::vector<std::string> keys;
  keys.push_back(p8);                      // exactly the shared prefix
  keys.push_back(p8 + std::string(1, '\x01'));
  keys.push_back(p8 + "a");
  keys.push_back(p8 + "a" + std::string(1, '\x00'));  // embedded NUL
  keys.push_back(p8 + "a" + std::string(1, '\x7f'));
  keys.push_back(p8 + "a" + std::string(1, '\x80'));  // sign-bit boundary
  keys.push_back(p8 + "a" + std::string(1, '\xff'));
  keys.push_back(p8 + "aa");
  keys.push_back(p8 + "aaaaaaaaaaaaaaaa");            // 3 packed words deep
  keys.push_back(p8 + "aaaaaaaaaaaaaaab");
  keys.push_back(p8 + std::string(1, '\x80'));
  keys.push_back(p8 + std::string(1, '\x80') + "tail");
  keys.push_back(p8 + std::string(1, '\xff'));
  keys.push_back(p8 + std::string(64, 'z'));          // long identical run
  keys.push_back(p8 + std::string(64, 'z') + "!");
  return keys;
}

/// Oracle record: value word + payload text.
using StrOracle = std::map<std::string, std::pair<Value, std::string>>;

/// Drains the whole tree through one big scan and compares against the
/// oracle: same keys, same order, same values, same payloads.
template <class Ctx>
void expect_matches_oracle(trees::AnyStrTree<Ctx>& tree, Ctx& c,
                           const StrOracle& oracle) {
  std::vector<std::tuple<std::string, Value, std::string>> got;
  const std::size_t n = tree.scan(
      c, BytesView{}, oracle.size() + 16,
      [&](BytesView k, Value v, BytesView p) {
        got.emplace_back(k.to_string(), v, p.to_string());
      });
  ASSERT_EQ(n, got.size());
  ASSERT_EQ(got.size(), oracle.size());
  std::size_t i = 0;
  for (const auto& [k, vp] : oracle) {
    ASSERT_EQ(std::get<0>(got[i]), k) << "scan order/coverage at " << i;
    ASSERT_EQ(std::get<1>(got[i]), vp.first) << "value for " << k;
    ASSERT_EQ(std::get<2>(got[i]), vp.second) << "payload for " << k;
    ++i;
  }
}

/// Random put/get/erase/overwrite stream over url-corpus keys + the torture
/// corpus, oracle-checked at the end (keys, order, values, payloads).
template <class Ctx>
void run_str_oracle(trees::AnyStrTree<Ctx>& tree, Ctx& c, std::uint64_t seed,
                    int ops, std::uint64_t ids) {
  const workload::StringKeySpace ks(workload::KeyStyle::kUrl, seed);
  const std::vector<std::string> torture = torture_keys();
  StrOracle oracle;
  Xoshiro256 rng(seed);
  auto key_at = [&](std::uint64_t r) {
    // 1 in 4 draws hits the torture corpus so shared-prefix keys see
    // constant churn alongside the url keys.
    if ((r & 3) == 0) return torture[r % torture.size()];
    return ks.key_of(r % ids);
  };
  for (int i = 0; i < ops; ++i) {
    const std::uint64_t r = rng.next();
    const std::string key = key_at(r);
    const BytesView kv(key);
    switch (rng.next_bounded(5)) {
      case 0: {  // erase
        const bool tree_had = tree.erase(c, kv);
        ASSERT_EQ(tree_had, oracle.erase(key) != 0) << "erase " << key;
        break;
      }
      case 1: {  // get
        Value v = 0;
        const bool found = tree.get(c, kv, &v);
        const auto it = oracle.find(key);
        ASSERT_EQ(found, it != oracle.end()) << "get " << key;
        if (found) ASSERT_EQ(v, it->second.first) << "get value " << key;
        break;
      }
      default: {  // put / overwrite, payload length varies 0..~90
        const Value v = rng.next();
        const std::string payload =
            ks.payload_of(r, v, static_cast<std::uint32_t>(rng.next_bounded(91)));
        tree.put(c, kv, v, BytesView(payload));
        oracle[key] = {v, payload};
        break;
      }
    }
  }
  expect_matches_oracle(tree, c, oracle);
  tree.check_invariants();
  ASSERT_EQ(tree.size_slow(), oracle.size());
}

class StrConformance : public ::testing::TestWithParam<TreeEntry> {};

TEST_P(StrConformance, OracleSim) {
  auto& ms = MemStats::instance();
  const std::uint64_t boxes_before =
      ms.snapshot(MemClass::kBytesBox).live_bytes;
  sim::Simulation simulation(test_sim_config());
  ctx::SimCtx c(simulation, 0);
  auto tree = GetParam().make_sim_str(c, TreeBuildOptions{});
  run_str_oracle(*tree, c, 921, 4000, 500);
  tree->destroy(c);
  // Full reclamation: destroy must free every live suffix/value box.
  ASSERT_EQ(ms.snapshot(MemClass::kBytesBox).live_bytes, boxes_before);
}

TEST_P(StrConformance, OracleNative) {
  auto& ms = MemStats::instance();
  const std::uint64_t boxes_before =
      ms.snapshot(MemClass::kBytesBox).live_bytes;
  ctx::NativeEnv env;
  ctx::NativeCtx c(env, 0);
  auto tree = GetParam().make_native_str(c, TreeBuildOptions{});
  run_str_oracle(*tree, c, 922, 9000, 1200);
  tree->destroy(c);
  ASSERT_EQ(ms.snapshot(MemClass::kBytesBox).live_bytes, boxes_before);
}

// Chunked scans with a cursor: the string successor of key K is K + '\0'
// (the shortest strictly-greater key), so resuming there must reproduce one
// contiguous, complete, ordered sweep for any chunk size.
TEST_P(StrConformance, ChunkedScanSweepSim) {
  sim::Simulation simulation(test_sim_config());
  ctx::SimCtx c(simulation, 0);
  auto tree = GetParam().make_sim_str(c, TreeBuildOptions{});

  const workload::StringKeySpace ks(workload::KeyStyle::kUuid, 923);
  StrOracle oracle;
  Xoshiro256 rng(923);
  for (int i = 0; i < 1500; ++i) {
    const std::string key = ks.key_of(rng.next_bounded(900));
    if (rng.next_bounded(4) == 0) {
      tree->erase(c, BytesView(key));
      oracle.erase(key);
    } else {
      const Value v = rng.next();
      const std::string payload = ks.payload_of(i, v, 24);
      tree->put(c, BytesView(key), v, BytesView(payload));
      oracle[key] = {v, payload};
    }
  }
  for (const std::size_t chunk :
       {std::size_t{1}, std::size_t{7}, std::size_t{33}}) {
    std::string start;  // empty = before every key
    std::size_t total = 0;
    auto it = oracle.begin();
    for (;;) {
      std::vector<std::tuple<std::string, Value, std::string>> batch;
      const std::size_t n =
          tree->scan(c, BytesView(start), chunk,
                     [&](BytesView k, Value v, BytesView p) {
                       batch.emplace_back(k.to_string(), v, p.to_string());
                     });
      ASSERT_EQ(n, batch.size());
      for (std::size_t j = 0; j < n; ++j, ++it) {
        ASSERT_NE(it, oracle.end()) << "chunk=" << chunk;
        ASSERT_EQ(std::get<0>(batch[j]), it->first) << "chunk=" << chunk;
        ASSERT_EQ(std::get<1>(batch[j]), it->second.first) << "chunk=" << chunk;
        ASSERT_EQ(std::get<2>(batch[j]), it->second.second) << "chunk=" << chunk;
      }
      total += n;
      if (n < chunk) break;
      start = std::get<0>(batch[n - 1]) + std::string(1, '\0');
    }
    ASSERT_EQ(it, oracle.end()) << "chunk=" << chunk;
    ASSERT_EQ(total, oracle.size()) << "chunk=" << chunk;
  }
  tree->check_invariants();
  tree->destroy(c);
}

// Value indirection reclamation: overwrites retire the previous box through
// the tree's epoch domain. The counters must show the churn (every overwrite
// after the first retires exactly one box) and respect freed <= retired at
// all times; destroy() then returns the box class to its baseline.
TEST_P(StrConformance, ReclamationCountersSim) {
  auto& ms = MemStats::instance();
  const std::uint64_t boxes_before =
      ms.snapshot(MemClass::kBytesBox).live_bytes;
  sim::Simulation simulation(test_sim_config());
  ctx::SimCtx c(simulation, 0);
  auto tree = GetParam().make_sim_str(c, TreeBuildOptions{});

  const std::string key = "pfx8----hotkey";
  constexpr int kOverwrites = 600;
  for (int i = 0; i < kOverwrites; ++i) {
    const std::string payload(static_cast<std::size_t>(i % 40), 'p');
    tree->put(c, BytesView(key), static_cast<Value>(i), BytesView(payload));
  }
  const std::uint64_t retired = tree->retired_boxes();
  const std::uint64_t freed = tree->freed_boxes();
  EXPECT_GE(retired, static_cast<std::uint64_t>(kOverwrites - 1));
  EXPECT_LE(freed, retired);

  Value v = 0;
  ASSERT_TRUE(tree->get(c, BytesView(key), &v));
  ASSERT_EQ(v, static_cast<Value>(kOverwrites - 1));
  tree->destroy(c);
  ASSERT_EQ(ms.snapshot(MemClass::kBytesBox).live_bytes, boxes_before);
}

TEST_P(StrConformance, SimConcurrentStress) {
  sim::Simulation simulation(test_sim_config());
  ctx::SimCtx setup(simulation, 0);
  auto tree = GetParam().make_sim_str(setup, TreeBuildOptions{});

  constexpr int kThreads = 8;
  constexpr int kOps = 250;
  constexpr std::uint64_t kSeed = 924;
  const std::vector<std::string> torture = torture_keys();
  for (int t = 0; t < kThreads; ++t) {
    simulation.spawn(t, [&, t](int core) {
      ctx::SimCtx c(simulation, core);
      const workload::StringKeySpace ks(workload::KeyStyle::kUrl, kSeed);
      Xoshiro256 rng(kSeed + static_cast<std::uint64_t>(t));
      for (int i = 0; i < kOps; ++i) {
        if (rng.next_bounded(2) == 0) {
          // Striped private keys: "t<t>/" prefix keeps them disjoint.
          const std::string key =
              "t" + std::to_string(t) + "/" + ks.key_of(rng.next_bounded(128));
          const std::string payload = ks.payload_of(
              static_cast<std::uint64_t>(i), static_cast<std::uint64_t>(t), 16);
          tree->put(c, BytesView(key),
                    (static_cast<Value>(t) << 32) | static_cast<Value>(i),
                    BytesView(payload));
        } else {
          // Hot shared-prefix keys, contended across all threads.
          const std::string& key = torture[rng.next_bounded(torture.size())];
          if (rng.next_bounded(3) == 0) {
            Value v;
            (void)tree->get(c, BytesView(key), &v);
          } else {
            tree->put(c, BytesView(key),
                      (static_cast<Value>(t) << 32) | static_cast<Value>(i),
                      BytesView{});
          }
        }
      }
    });
  }
  simulation.run();

  tree->check_invariants();
  ctx::SimCtx verify(simulation, 0);
  for (int t = 0; t < kThreads; ++t) {
    const workload::StringKeySpace ks(workload::KeyStyle::kUrl, kSeed);
    Xoshiro256 rng(kSeed + static_cast<std::uint64_t>(t));
    std::map<std::string, Value> mine;
    for (int i = 0; i < kOps; ++i) {
      if (rng.next_bounded(2) == 0) {
        const std::string key =
            "t" + std::to_string(t) + "/" + ks.key_of(rng.next_bounded(128));
        ks.payload_of(static_cast<std::uint64_t>(i),
                      static_cast<std::uint64_t>(t), 16);
        mine[key] = (static_cast<Value>(t) << 32) | static_cast<Value>(i);
      } else {
        rng.next_bounded(torture.size());
        rng.next_bounded(3);  // keep the replayed stream in sync
      }
    }
    for (const auto& [k, v] : mine) {
      Value got = 0;
      ASSERT_TRUE(tree->get(verify, BytesView(k), &got))
          << "lost striped key " << k;
      ASSERT_EQ(got, v);
    }
  }
  tree->destroy(verify);
}

TEST_P(StrConformance, NativeConcurrentStress) {
  ctx::NativeEnv env;
  ctx::NativeCtx setup(env, 0);
  auto tree = GetParam().make_native_str(setup, TreeBuildOptions{});

  constexpr int kThreads = 4;
  constexpr int kOps = 1500;
  constexpr std::uint64_t kSeed = 925;
  const std::vector<std::string> torture = torture_keys();
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      ctx::NativeCtx c(env, t);
      const workload::StringKeySpace ks(workload::KeyStyle::kUuid, kSeed);
      Xoshiro256 rng(kSeed + static_cast<std::uint64_t>(t));
      for (int i = 0; i < kOps; ++i) {
        if (rng.next_bounded(2) == 0) {
          const std::string key =
              "t" + std::to_string(t) + "/" + ks.key_of(rng.next_bounded(256));
          const std::string payload = ks.payload_of(
              static_cast<std::uint64_t>(i), static_cast<std::uint64_t>(t), 32);
          tree->put(c, BytesView(key),
                    (static_cast<Value>(t) << 32) | static_cast<Value>(i),
                    BytesView(payload));
        } else {
          const std::string& key = torture[rng.next_bounded(torture.size())];
          if (rng.next_bounded(3) == 0) {
            Value v;
            (void)tree->get(c, BytesView(key), &v);
          } else {
            tree->put(c, BytesView(key),
                      (static_cast<Value>(t) << 32) | static_cast<Value>(i),
                      BytesView{});
          }
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  tree->check_invariants();
  ctx::NativeCtx verify(env, 0);
  for (int t = 0; t < kThreads; ++t) {
    const workload::StringKeySpace ks(workload::KeyStyle::kUuid, kSeed);
    Xoshiro256 rng(kSeed + static_cast<std::uint64_t>(t));
    std::map<std::string, Value> mine;
    for (int i = 0; i < kOps; ++i) {
      if (rng.next_bounded(2) == 0) {
        const std::string key =
            "t" + std::to_string(t) + "/" + ks.key_of(rng.next_bounded(256));
        ks.payload_of(static_cast<std::uint64_t>(i),
                      static_cast<std::uint64_t>(t), 32);
        mine[key] = (static_cast<Value>(t) << 32) | static_cast<Value>(i);
      } else {
        rng.next_bounded(torture.size());
        rng.next_bounded(3);
      }
    }
    for (const auto& [k, v] : mine) {
      Value got = 0;
      ASSERT_TRUE(tree->get(verify, BytesView(k), &got))
          << "lost striped key " << k;
      ASSERT_EQ(got, v);
    }
  }
  tree->destroy(verify);
}

std::string entry_test_name(const ::testing::TestParamInfo<TreeEntry>& info) {
  std::string out;
  for (char ch : info.param.name) out += (ch == '-') ? '_' : ch;
  return out;
}

INSTANTIATE_TEST_SUITE_P(BytesDomainTrees, StrConformance,
                         ::testing::ValuesIn(str_entries()), entry_test_name);

}  // namespace
}  // namespace euno::tests
