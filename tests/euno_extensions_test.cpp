// Tests for the Euno-B+Tree extensions: bulk loading and introspection.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/euno_snapshot.hpp"
#include "core/euno_tree.hpp"
#include "tree_conformance.hpp"

namespace euno::tests {
namespace {

using core::EunoBPTree;
using core::EunoConfig;

std::vector<KV> make_sorted(std::size_t n, Key stride = 3, Key base = 10) {
  std::vector<KV> kvs;
  kvs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    kvs.push_back(KV{base + i * stride, i * 7 + 1});
  }
  return kvs;
}

TEST(EunoBulkLoad, EmptyAndSingleton) {
  ctx::NativeEnv env;
  ctx::NativeCtx c(env, 0);
  {
    EunoBPTree<ctx::NativeCtx> tree(c, EunoConfig::full());
    tree.bulk_load(c, nullptr, 0);
    EXPECT_EQ(tree.size_slow(), 0u);
    tree.destroy(c);
  }
  {
    EunoBPTree<ctx::NativeCtx> tree(c, EunoConfig::full());
    const KV one{5, 50};
    tree.bulk_load(c, &one, 1);
    Value v = 0;
    EXPECT_TRUE(tree.get(c, 5, &v));
    EXPECT_EQ(v, 50u);
    tree.check_invariants();
    tree.destroy(c);
  }
}

class BulkLoadSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BulkLoadSizes, LoadsExactlyAndStaysOrdered) {
  const std::size_t n = GetParam();
  ctx::NativeEnv env;
  ctx::NativeCtx c(env, 0);
  EunoBPTree<ctx::NativeCtx> tree(c, EunoConfig::full());
  const auto kvs = make_sorted(n);
  tree.bulk_load(c, kvs.data(), kvs.size());
  tree.check_invariants();
  EXPECT_EQ(tree.size_slow(), n);
  for (const auto& [k, v] : kvs) {
    Value got = 0;
    ASSERT_TRUE(tree.get(c, k, &got)) << k;
    ASSERT_EQ(got, v);
  }
  // Keys between loaded ones are absent (mark bits must not lie).
  for (std::size_t i = 0; i < std::min<std::size_t>(n, 200); ++i) {
    Value got;
    ASSERT_FALSE(tree.get(c, kvs[i].first + 1, &got));
  }
  // Scans cross bulk-loaded leaf boundaries in order.
  std::vector<KV> buf(64);
  const std::size_t got = tree.scan(c, 0, buf.size(), buf.data());
  EXPECT_EQ(got, std::min<std::size_t>(64, n));
  for (std::size_t i = 0; i < got; ++i) {
    EXPECT_EQ(buf[i].first, kvs[i].first);
  }
  tree.destroy(c);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BulkLoadSizes,
                         ::testing::Values(2, 15, 16, 17, 255, 256, 257, 4096,
                                           50000));

TEST(EunoBulkLoad, MutationsAfterLoadWork) {
  ctx::NativeEnv env;
  ctx::NativeCtx c(env, 0);
  EunoBPTree<ctx::NativeCtx> tree(c, EunoConfig::full());
  const auto kvs = make_sorted(10000);
  tree.bulk_load(c, kvs.data(), kvs.size());
  // Insert between loaded keys, update, erase.
  for (Key k = 0; k < 3000; ++k) tree.put(c, 11 + k * 3, k);  // new keys
  for (Key k = 0; k < 1000; ++k) tree.put(c, 10 + k * 3, 999);  // updates
  for (Key k = 0; k < 1000; ++k) EXPECT_TRUE(tree.erase(c, 13 + k * 3));
  tree.check_invariants();
  EXPECT_EQ(tree.size_slow(), 10000u + 3000u - 1000u);
  Value v = 0;
  ASSERT_TRUE(tree.get(c, 10, &v));
  EXPECT_EQ(v, 999u);
  tree.destroy(c);
}

TEST(EunoBulkLoad, ConcurrentOpsOnBulkLoadedTree) {
  sim::Simulation simulation(test_sim_config());
  ctx::SimCtx setup(simulation, 0);
  EunoBPTree<ctx::SimCtx> tree(setup, EunoConfig::full());
  const auto kvs = make_sorted(20000, 2, 0);
  tree.bulk_load(setup, kvs.data(), kvs.size());

  for (int t = 0; t < 8; ++t) {
    simulation.spawn(t, [&, t](int core) {
      ctx::SimCtx c(simulation, core);
      Xoshiro256 rng(700 + static_cast<std::uint64_t>(t));
      for (int i = 0; i < 300; ++i) {
        const Key k = rng.next_bounded(40000);
        if (rng.next_bounded(2) == 0) {
          tree.put(c, k, k + 5);
        } else {
          Value v;
          (void)tree.get(c, k, &v);
        }
      }
    });
  }
  simulation.run();
  tree.check_invariants();
  tree.destroy(setup);
}

TEST(EunoStats, CountsMatchReality) {
  ctx::NativeEnv env;
  ctx::NativeCtx c(env, 0);
  EunoBPTree<ctx::NativeCtx> tree(c, EunoConfig::full());
  for (Key k = 0; k < 5000; ++k) tree.put(c, k, k);
  for (Key k = 0; k < 5000; k += 5) tree.erase(c, k);

  const auto st = tree.collect_stats();
  EXPECT_EQ(st.live_records, tree.size_slow());
  EXPECT_EQ(st.live_records, st.records_in_segments + st.records_in_reserved);
  EXPECT_EQ(st.live_records, 4000u);
  EXPECT_GT(st.leaves, 100u);
  EXPECT_GT(st.inodes, 0u);
  EXPECT_EQ(st.height, tree.height());
  EXPECT_GT(st.marks_set, 0u);
  EXPECT_GE(st.mark_false_positive_rate, 0.0);
  EXPECT_LE(st.mark_false_positive_rate, 1.0);
  tree.destroy(c);
}

TEST(EunoStats, FalsePositiveRateBoundedAfterChurn) {
  // The paper sets the CCM vector at 2x fanout to keep the false-positive
  // rate under ~6%. After splits our left-leaf marks are conservative
  // supersets, so the measured rate is higher than a fresh Bloom vector's,
  // but must stay well away from saturation.
  ctx::NativeEnv env;
  ctx::NativeCtx c(env, 0);
  EunoBPTree<ctx::NativeCtx> tree(c, EunoConfig::full());
  Xoshiro256 rng(42);
  for (int i = 0; i < 60000; ++i) {
    const Key k = rng.next_bounded(20000);
    if (rng.next_bounded(4) == 0) {
      tree.erase(c, k);
    } else {
      tree.put(c, k, k);
    }
  }
  const auto st = tree.collect_stats();
  EXPECT_LT(st.mark_false_positive_rate, 0.60)
      << "stale marks must not saturate the filter";
  tree.check_invariants();
  tree.destroy(c);
}

TEST(EunoStats, BypassModeVisibleInStats) {
  ctx::NativeEnv env;
  ctx::NativeCtx c(env, 0);
  EunoBPTree<ctx::NativeCtx> tree(c, EunoConfig::full());
  for (Key k = 0; k < 1000; ++k) tree.put(c, k, k);
  const auto st = tree.collect_stats();
  // Single-threaded: no contention, every leaf stays in bypass mode.
  EXPECT_EQ(st.leaves_in_bypass_mode, st.leaves);
  tree.destroy(c);
}

TEST(EunoScanCompaction, ScanMovesRecordsIntoReserved) {
  ctx::NativeEnv env;
  ctx::NativeCtx c(env, 0);
  core::EunoConfig cfg = EunoConfig::full();
  cfg.scan_compacts = true;
  EunoBPTree<ctx::NativeCtx> tree(c, cfg);
  // A single leaf with records scattered across segments (no split yet):
  // the canonical compactable case.
  for (Key k = 0; k < 12; ++k) tree.put(c, k * 7, k);
  const auto before = tree.collect_stats();
  EXPECT_GT(before.records_in_segments, 0u);
  std::vector<KV> buf(4096);
  (void)tree.scan(c, 0, buf.size(), buf.data());
  const auto after = tree.collect_stats();
  // Every leaf here fits the reserved buffer, so the scan compacts fully;
  // leaves holding more than F live records would keep their segments.
  EXPECT_EQ(after.records_in_segments, 0u);
  EXPECT_EQ(after.live_records, before.live_records);
  tree.check_invariants();
  // Consecutive scan hits the fast path and returns identical results.
  std::vector<KV> buf2(4096);
  const std::size_t n1 = tree.scan(c, 0, buf.size(), buf.data());
  const std::size_t n2 = tree.scan(c, 0, buf2.size(), buf2.data());
  ASSERT_EQ(n1, n2);
  for (std::size_t i = 0; i < n1; ++i) ASSERT_EQ(buf[i], buf2[i]);
  tree.destroy(c);
}

TEST(EunoScanCompaction, TransientVariantLeavesSegmentsAlone) {
  ctx::NativeEnv env;
  ctx::NativeCtx c(env, 0);
  core::EunoConfig cfg = EunoConfig::full();
  cfg.scan_compacts = false;
  EunoBPTree<ctx::NativeCtx> tree(c, cfg);
  Xoshiro256 rng(6);
  for (int i = 0; i < 500; ++i) tree.put(c, rng.next_bounded(2000), 1);
  const auto before = tree.collect_stats();
  std::vector<KV> buf(4096);
  (void)tree.scan(c, 0, buf.size(), buf.data());
  const auto after = tree.collect_stats();
  EXPECT_EQ(after.records_in_segments, before.records_in_segments);
  tree.check_invariants();
  tree.destroy(c);
}

TEST(EunoSnapshot, SaveLoadRoundTrip) {
  const std::string path = "/tmp/euno_snapshot_test.bin";
  ctx::NativeEnv env;
  ctx::NativeCtx c(env, 0);
  std::map<Key, Value> expect;
  {
    EunoBPTree<ctx::NativeCtx> tree(c, EunoConfig::full());
    Xoshiro256 rng(9);
    for (int i = 0; i < 20000; ++i) {
      const Key k = rng.next_bounded(100000);
      const Value v = rng.next();
      tree.put(c, k, v);
      expect[k] = v;
    }
    for (int i = 0; i < 3000; ++i) {
      const Key k = rng.next_bounded(100000);
      tree.erase(c, k);
      expect.erase(k);
    }
    const long saved = core::save_snapshot(c, tree, path);
    ASSERT_EQ(saved, static_cast<long>(expect.size()));
    tree.destroy(c);
  }
  {
    EunoBPTree<ctx::NativeCtx> tree(c, EunoConfig::full());
    const long loaded = core::load_snapshot(c, tree, path);
    ASSERT_EQ(loaded, static_cast<long>(expect.size()));
    tree.check_invariants();
    EXPECT_EQ(tree.size_slow(), expect.size());
    for (const auto& [k, v] : expect) {
      Value got = 0;
      ASSERT_TRUE(tree.get(c, k, &got)) << k;
      ASSERT_EQ(got, v);
    }
    tree.destroy(c);
  }
  std::remove(path.c_str());
}

TEST(EunoSnapshot, EmptyTreeRoundTrip) {
  const std::string path = "/tmp/euno_snapshot_empty.bin";
  ctx::NativeEnv env;
  ctx::NativeCtx c(env, 0);
  EunoBPTree<ctx::NativeCtx> tree(c, EunoConfig::full());
  EXPECT_EQ(core::save_snapshot(c, tree, path), 0);
  EunoBPTree<ctx::NativeCtx> tree2(c, EunoConfig::full());
  EXPECT_EQ(core::load_snapshot(c, tree2, path), 0);
  EXPECT_EQ(tree2.size_slow(), 0u);
  tree.destroy(c);
  tree2.destroy(c);
  std::remove(path.c_str());
}

TEST(EunoSnapshot, RejectsCorruptFiles) {
  const std::string path = "/tmp/euno_snapshot_corrupt.bin";
  FILE* f = fopen(path.c_str(), "wb");
  const char junk[64] = "this is not a snapshot";
  fwrite(junk, sizeof(junk), 1, f);
  fclose(f);
  std::vector<KV> out;
  EXPECT_FALSE(core::read_snapshot(path, &out));
  EXPECT_FALSE(core::read_snapshot("/tmp/euno_no_such_file.bin", &out));
  std::remove(path.c_str());
}

TEST(EunoBulkLoad, RejectsNonEmptyTree) {
  ctx::NativeEnv env;
  ctx::NativeCtx c(env, 0);
  EunoBPTree<ctx::NativeCtx> tree(c, EunoConfig::full());
  tree.put(c, 1, 1);
  const auto kvs = make_sorted(10);
  EXPECT_DEATH(tree.bulk_load(c, kvs.data(), kvs.size()), "empty tree");
  tree.destroy(c);
}

}  // namespace
}  // namespace euno::tests
