// Tests for the simulator's memory-system details added during calibration:
// 64-byte-granular arena size classes and the time-based cache capacity
// (retention) model.
#include <gtest/gtest.h>

#include "sim/arena.hpp"
#include "sim/engine.hpp"
#include "sim/memmodel.hpp"

namespace euno::sim {
namespace {

TEST(ArenaSizeClasses, SmallAllocationsAreTight) {
  SharedArena arena(16ull << 20);
  MemStats::instance().reset();
  // A 640-byte request must consume 640 bytes, not a 1 KiB power of two.
  void* p = arena.alloc(640, MemClass::kLeafNode, LineKind::kOther);
  EXPECT_EQ(MemStats::instance().snapshot(MemClass::kLeafNode).live_bytes, 640u);
  arena.free(p, 640, MemClass::kLeafNode);
  EXPECT_EQ(MemStats::instance().snapshot(MemClass::kLeafNode).live_bytes, 0u);
  MemStats::instance().reset();
}

TEST(ArenaSizeClasses, ReuseIsPerClass) {
  SharedArena arena(16ull << 20);
  void* a = arena.alloc(320, MemClass::kOther, LineKind::kOther);
  void* b = arena.alloc(640, MemClass::kOther, LineKind::kOther);
  arena.free(a, 320, MemClass::kOther);
  arena.free(b, 640, MemClass::kOther);
  // Same-size request reuses the matching slot, not the other class's.
  EXPECT_EQ(arena.alloc(320, MemClass::kOther, LineKind::kOther), a);
  EXPECT_EQ(arena.alloc(640, MemClass::kOther, LineKind::kOther), b);
}

TEST(ArenaSizeClasses, LargeAllocationsRoundUpward) {
  SharedArena arena(64ull << 20);
  MemStats::instance().reset();
  void* p = arena.alloc(3000, MemClass::kOther, LineKind::kOther);
  const auto live = MemStats::instance().snapshot(MemClass::kOther).live_bytes;
  EXPECT_GE(live, 3000u);
  arena.free(p, 3000, MemClass::kOther);
  EXPECT_EQ(MemStats::instance().snapshot(MemClass::kOther).live_bytes, 0u);
  MemStats::instance().reset();
}

TEST(CapacityModel, RecentLineIsAHit) {
  MachineConfig cfg;
  LineState line;
  coherence_access(line, 0, true, cfg, /*now=*/1000);
  EXPECT_EQ(peek_cost(line, 0, false, cfg, 1000 + 100), cfg.latency.l1_hit);
}

TEST(CapacityModel, StaleLineFallsToL3ThenDram) {
  MachineConfig cfg;
  LineState line;
  coherence_access(line, 0, true, cfg, /*now=*/0);
  // Past the private-cache retention: shared-level fill.
  EXPECT_EQ(peek_cost(line, 0, false, cfg, cfg.latency.l2_retention + 1),
            cfg.latency.local_cache);
  // Past the shared retention: memory fill.
  EXPECT_EQ(peek_cost(line, 0, false, cfg, cfg.latency.l3_retention + 1),
            cfg.latency.dram);
}

TEST(CapacityModel, TouchRefreshesRetention) {
  MachineConfig cfg;
  LineState line;
  coherence_access(line, 0, true, cfg, 0);
  const std::uint64_t later = cfg.latency.l2_retention - 10;
  coherence_access(line, 0, false, cfg, later);  // refresh
  EXPECT_EQ(peek_cost(line, 0, false, cfg, later + cfg.latency.l2_retention - 10),
            cfg.latency.l1_hit);
}

TEST(CapacityModel, HotPathStaysCheapColdTailPaysInSimulation) {
  // End-to-end: a fiber hammering one line stays at L1 cost while revisiting
  // a long-idle line costs a memory fill.
  MachineConfig cfg;
  cfg.arena_bytes = 16ull << 20;
  Simulation sim(cfg);
  auto* hot = static_cast<std::uint64_t*>(
      sim.arena().alloc(8, MemClass::kOther, LineKind::kOther));
  auto* cold = static_cast<std::uint64_t*>(
      sim.arena().alloc(8, MemClass::kOther, LineKind::kOther));
  std::uint64_t hot_cost = 0, cold_cost = 0;
  sim.spawn(0, [&](int) {
    sim.mem_access(cold, 8, false);  // warm it once
    sim.mem_access(hot, 8, false);
    // Burn far past the L3 retention touching only `hot`.
    const std::uint64_t target = cfg.latency.l3_retention + 100000;
    while (sim.clock_of(0) < target) sim.mem_access(hot, 8, false);
    const std::uint64_t c0 = sim.clock_of(0);
    sim.mem_access(hot, 8, false);
    hot_cost = sim.clock_of(0) - c0;
    const std::uint64_t c1 = sim.clock_of(0);
    sim.mem_access(cold, 8, false);
    cold_cost = sim.clock_of(0) - c1;
  });
  sim.run();
  EXPECT_LE(hot_cost, cfg.latency.l1_hit + cfg.costs.instr);
  EXPECT_GE(cold_cost, cfg.latency.dram);
}

}  // namespace
}  // namespace euno::sim
