// Tests for the experiment driver — and the first end-to-end check of the
// paper's headline claim: under high contention Euno-B+Tree aborts far less
// and runs far faster than the monolithic HTM-B+Tree.
#include <gtest/gtest.h>

#include "driver/experiment.hpp"

namespace euno::driver {
namespace {

ExperimentSpec small_spec(TreeKind tree, double theta, int threads) {
  // Figure-style configuration scaled down for test runtime: consecutive
  // (unscrambled) zipfian hot keys, half the keys preloaded with stride 2 so
  // hot inserts continue during the measured phase.
  ExperimentSpec spec;
  spec.tree = tree;
  spec.threads = threads;
  spec.workload.key_range = 1 << 16;
  spec.workload.dist = workload::DistKind::kZipfian;
  spec.workload.dist_param = theta;
  spec.workload.scramble = false;
  spec.preload = spec.workload.key_range / 2;
  spec.preload_stride = 2;
  spec.ops_per_thread = 1500;
  spec.machine.arena_bytes = 512ull << 20;
  return spec;
}

TEST(Driver, AllTreeKindsRunAndProduceOps) {
  for (TreeKind k :
       {TreeKind::kHtmBPTree, TreeKind::kMasstree, TreeKind::kHtmMasstree,
        TreeKind::kEuno, TreeKind::kEunoSplit, TreeKind::kEunoPart,
        TreeKind::kEunoLockbits, TreeKind::kEunoMarkbits}) {
    const auto r = run_sim_experiment(small_spec(k, 0.5, 4));
    EXPECT_EQ(r.ops, 6000u) << tree_kind_name(k);
    EXPECT_GT(r.throughput_mops, 0.0) << tree_kind_name(k);
    EXPECT_GT(r.sim_cycles, 0u) << tree_kind_name(k);
    EXPECT_GT(r.instructions_per_op, 0.0) << tree_kind_name(k);
  }
}

TEST(Driver, Deterministic) {
  const auto a = run_sim_experiment(small_spec(TreeKind::kEuno, 0.9, 8));
  const auto b = run_sim_experiment(small_spec(TreeKind::kEuno, 0.9, 8));
  EXPECT_EQ(a.sim_cycles, b.sim_cycles);
  EXPECT_EQ(a.aborts_total, b.aborts_total);
  EXPECT_EQ(a.commits, b.commits);
}

TEST(Driver, BaselineAbortsGrowWithContention) {
  const auto low = run_sim_experiment(small_spec(TreeKind::kHtmBPTree, 0.2, 16));
  const auto high = run_sim_experiment(small_spec(TreeKind::kHtmBPTree, 0.99, 16));
  EXPECT_GT(high.aborts_per_op, low.aborts_per_op * 3)
      << "Figure 2 premise: aborts must rise sharply with skew";
}

TEST(Driver, EunoBeatsBaselineUnderHighContention) {
  const auto base = run_sim_experiment(small_spec(TreeKind::kHtmBPTree, 0.99, 16));
  const auto euno = run_sim_experiment(small_spec(TreeKind::kEuno, 0.99, 16));
  EXPECT_GT(euno.throughput_mops, base.throughput_mops * 1.4)
      << "§5.2: Euno should clearly beat the monolithic baseline at θ=0.99 "
      << "(the paper reports up to 11x on its testbed; our simulated machine "
      << "reproduces the direction at a smaller magnitude)";
  EXPECT_LT(euno.aborts_per_op, base.aborts_per_op)
      << "§5.2: Euno must abort less per op";
}

TEST(Driver, EunoOverheadSmallUnderLowContention) {
  const auto base = run_sim_experiment(small_spec(TreeKind::kHtmBPTree, 0.2, 16));
  const auto euno = run_sim_experiment(small_spec(TreeKind::kEuno, 0.2, 16));
  EXPECT_GT(euno.throughput_mops, base.throughput_mops * 0.55)
      << "§5.6: adaptive control keeps low-contention overhead bounded "
      << "(the extra HTM region, mark maintenance and scattered search "
      << "cost more under our latency-dominated cost model than on the "
      << "paper's testbed)";
}

TEST(Driver, MonolithicAbortsLandInMonoSite) {
  const auto r = run_sim_experiment(small_spec(TreeKind::kHtmBPTree, 0.9, 16));
  EXPECT_GT(r.mono_aborts, 0u);
  EXPECT_EQ(r.upper_aborts + r.lower_aborts, 0u);
}

TEST(Driver, EunoAbortsConcentrateInLowerRegion) {
  const auto r = run_sim_experiment(small_spec(TreeKind::kEunoPart, 0.95, 16));
  EXPECT_EQ(r.mono_aborts, 0u);
  EXPECT_GT(r.lower_aborts, r.upper_aborts)
      << "conflicts concentrate in the leaf layer (§2.3)";
}

TEST(Driver, NativeEngineSmoke) {
  auto spec = small_spec(TreeKind::kEuno, 0.9, 2);
  spec.ops_per_thread = 2000;
  const auto r = run_native_experiment(spec);
  EXPECT_EQ(r.ops, 4000u);
  EXPECT_GT(r.throughput_mops, 0.0);
}

TEST(Driver, MemoryAccounting) {
  const auto r = run_sim_experiment(small_spec(TreeKind::kEuno, 0.5, 4));
  EXPECT_GT(r.mem_total, 0u);
  // CCM bytes are folded into each leaf allocation (one line per leaf), so
  // the reserved-keys class is the visible Euno overhead knob.
  EXPECT_LT(r.mem_reserved, r.mem_total);
}

}  // namespace
}  // namespace euno::driver
