// Equivalence property test for the vectorized node-search kernels
// (trees/node/simd_search.hpp): every kernel set runnable on this host
// (scalar, SSE2, AVX2 when supported) must return exactly the scalar
// reference's answer on every layout the node headers feed them — all
// fanouts, all fills from empty to full, sorted unique arrays, duplicate
// neighborhoods, and boundary keys around 0, the sign bit, and ~0ull.
//
// Probes cover hits on every position, misses between every pair of
// elements, and both extremes, so tail handling (the partial vector at the
// end) and lane masking are exercised at every n.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "trees/key_traits.hpp"
#include "trees/node/simd_search.hpp"

namespace euno::trees::node::simd {
namespace {

// Deterministic 64-bit mixer (splitmix64 finalizer) — no <random>, and the
// test enumerates the same cases on every run.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Key patterns fed to both kernel families. All are sorted (count_le
// requires it; find_eq_pairs does not care).
std::vector<std::vector<std::uint64_t>> key_patterns(int n) {
  std::vector<std::vector<std::uint64_t>> out;
  // Sorted pseudo-random, unique with wide gaps.
  {
    std::vector<std::uint64_t> v;
    std::uint64_t k = 3;
    for (int i = 0; i < n; ++i) {
      k += 2 + (mix(static_cast<std::uint64_t>(i)) & 0xffff);
      v.push_back(k);
    }
    out.push_back(std::move(v));
  }
  // Dense consecutive run (adjacent keys differ by 1).
  {
    std::vector<std::uint64_t> v;
    for (int i = 0; i < n; ++i) v.push_back(1000 + static_cast<std::uint64_t>(i));
    out.push_back(std::move(v));
  }
  // Duplicate plateaus (count_le must count ALL equal keys; legal input for
  // the child_index contract even though live nodes keep separators unique).
  {
    std::vector<std::uint64_t> v;
    for (int i = 0; i < n; ++i) v.push_back(500 + static_cast<std::uint64_t>(i / 3) * 10);
    out.push_back(std::move(v));
  }
  // Boundary keys: values hugging 0, the 2^63 sign bit (where the
  // signed-compare trick in the SSE2/AVX2 kernels would break if the bias
  // were wrong), and ~0ull.
  {
    std::vector<std::uint64_t> v;
    const std::uint64_t kEdges[] = {0ull,
                                    1ull,
                                    2ull,
                                    (1ull << 63) - 2,
                                    (1ull << 63) - 1,
                                    1ull << 63,
                                    (1ull << 63) + 1,
                                    ~0ull - 2,
                                    ~0ull - 1,
                                    ~0ull};
    int produced = 0;
    for (std::uint64_t e : kEdges) {
      if (produced == n) break;
      v.push_back(e);
      ++produced;
    }
    while (produced < n) {  // pad past the edge set, keeping sorted order
      v.push_back(v.back());
      ++produced;
    }
    out.push_back(std::move(v));
  }
  return out;
}

// Probe keys for one array: every element (hit), every midpoint and
// offset-by-one (miss), and the extremes of the key space.
std::vector<std::uint64_t> probes(const std::vector<std::uint64_t>& keys) {
  std::vector<std::uint64_t> p = {0ull, 1ull, (1ull << 63) - 1, 1ull << 63,
                                  ~0ull};
  for (std::uint64_t k : keys) {
    p.push_back(k);
    p.push_back(k - 1);
    p.push_back(k + 1);
  }
  return p;
}

TEST(SimdSearch, KernelRosterIsSane) {
  int count = 0;
  const SearchKernels* const* all = runnable_kernels(&count);
  ASSERT_GE(count, 1);
  EXPECT_STREQ(all[0]->name, "scalar");
  // The dispatcher's pick must be one of the runnable sets (or the scalar
  // set when EUNO_NO_SIMD is exported into the test environment).
  bool active_listed = false;
  for (int i = 0; i < count; ++i) {
    if (all[i] == &active_kernels()) active_listed = true;
  }
  EXPECT_TRUE(active_listed) << "active kernels not in runnable roster";
}

TEST(SimdSearch, CountLeMatchesScalarEverywhere) {
  int count = 0;
  const SearchKernels* const* all = runnable_kernels(&count);
  const SearchKernels& ref = scalar_kernels();
  for (int fanout : {4, 8, 16, 32, 64}) {
    for (int n = 0; n <= fanout; ++n) {  // empty through full
      for (const auto& keys : key_patterns(n)) {
        for (std::uint64_t probe : probes(keys)) {
          const int want = ref.count_le(keys.data(), n, probe);
          for (int k = 0; k < count; ++k) {
            const int got = all[k]->count_le(keys.data(), n, probe);
            ASSERT_EQ(got, want)
                << all[k]->name << " count_le n=" << n << " probe=" << probe;
          }
        }
      }
    }
  }
}

TEST(SimdSearch, FindEqPairsMatchesScalarEverywhere) {
  int count = 0;
  const SearchKernels* const* all = runnable_kernels(&count);
  const SearchKernels& ref = scalar_kernels();
  for (int fanout : {4, 8, 16, 32, 64}) {
    for (int n = 0; n <= fanout; ++n) {
      for (const auto& keys : key_patterns(n)) {
        // Interleave {key, value} pairs the way Record arrays lay out in
        // memory; values are distinct garbage that must never match.
        std::vector<std::uint64_t> kv(2 * static_cast<std::size_t>(n));
        for (int i = 0; i < n; ++i) {
          kv[2 * static_cast<std::size_t>(i)] = keys[static_cast<std::size_t>(i)];
          kv[2 * static_cast<std::size_t>(i) + 1] =
              mix(keys[static_cast<std::size_t>(i)]);
        }
        for (std::uint64_t probe : probes(keys)) {
          const int want = ref.find_eq_pairs(kv.data(), n, probe);
          for (int k = 0; k < count; ++k) {
            const int got = all[k]->find_eq_pairs(kv.data(), n, probe);
            ASSERT_EQ(got, want)
                << all[k]->name << " find_eq_pairs n=" << n
                << " probe=" << probe;
          }
        }
        // A value colliding with the probe key must not count as a hit:
        // plant the probe in a value lane only.
        if (n >= 2) {
          const std::uint64_t foreign = keys.back() + 12345;
          kv[1] = foreign;  // value of record 0
          const int want = ref.find_eq_pairs(kv.data(), n, foreign);
          ASSERT_EQ(want, -1) << "reference matched a value lane";
          for (int k = 0; k < count; ++k) {
            ASSERT_EQ(all[k]->find_eq_pairs(kv.data(), n, foreign), -1)
                << all[k]->name << " matched a value lane, n=" << n;
          }
        }
      }
    }
  }
}

// --- Prefix-slice kernels (bytes key domain) --------------------------------
//
// Bytes-domain nodes search the same u64 kernels over big-endian packed
// prefix slices (key_traits.hpp bytes_prefix). These cases feed the kernels
// slice arrays produced from real string corpora, concentrating on the two
// shapes that distinguish the bytes domain from arbitrary u64 keys:
//  - long shared prefixes, where many slices are EQUAL (count_le must count
//    the whole plateau; duplicate-heavy inputs stress the tail masks), and
//  - bytes >= 0x80 in the leading positions, which set the packed word's
//    sign bit — exactly where the SSE2/AVX2 signed-compare bias would break.

// String corpora for one fill level. All sorted by bytes_compare, which by
// the monotone-coarsening property sorts the packed slices too.
std::vector<std::vector<std::string>> string_patterns(int n) {
  std::vector<std::vector<std::string>> out;
  // Shared 8-byte prefix, suffix-only differences: every slice equal.
  {
    std::vector<std::string> v;
    for (int i = 0; i < n; ++i) {
      v.push_back("pfx8----suffix" + std::to_string(1000 + i));
    }
    out.push_back(std::move(v));
  }
  // Distinct prefixes within the first 8 bytes (url-host style).
  {
    std::vector<std::string> v;
    for (int i = 0; i < n; ++i) {
      std::string s = "h";
      s += static_cast<char>('a' + (i % 26));
      s += static_cast<char>('a' + (i / 26));
      s += ".example.com/" + std::to_string(i);
      v.push_back(std::move(s));
    }
    std::sort(v.begin(), v.end());
    out.push_back(std::move(v));
  }
  // Sign-bit bytes: leading 0x7f/0x80/0xff so packed slices straddle 2^63.
  {
    std::vector<std::string> v;
    for (int i = 0; i < n; ++i) {
      std::string s;
      s += static_cast<char>(0x7e + (i % 4));  // 0x7e..0x81: straddles 0x80
      s += static_cast<char>(0x80 | (i % 64));
      s += "tail" + std::to_string(i);
      v.push_back(std::move(s));
    }
    std::sort(v.begin(), v.end());
    out.push_back(std::move(v));
  }
  // Short keys (< 8 bytes): zero-padded slices, including the empty key.
  {
    std::vector<std::string> v;
    for (int i = 0; i < n; ++i) {
      v.push_back(std::string(static_cast<std::size_t>(i % 7), 'k') +
                  (i >= 7 ? std::to_string(i) : ""));
    }
    std::sort(v.begin(), v.end());
    out.push_back(std::move(v));
  }
  return out;
}

// The slice packing really is a monotone coarsening of lexicographic order:
// a < b implies slice(a) <= slice(b), and slice(a) < slice(b) implies a < b.
TEST(SimdPrefixSearch, SlicePackingIsMonotone) {
  for (const auto& corpus : string_patterns(32)) {
    for (std::size_t i = 0; i + 1 < corpus.size(); ++i) {
      const auto& a = corpus[i];
      const auto& b = corpus[i + 1];
      const int full = bytes_compare(a.data(), a.size(), b.data(), b.size());
      const std::uint64_t sa = bytes_prefix(a.data(), a.size());
      const std::uint64_t sb = bytes_prefix(b.data(), b.size());
      if (full <= 0) EXPECT_LE(sa, sb) << "'" << a << "' vs '" << b << "'";
      if (sa < sb) EXPECT_LT(full, 0) << "'" << a << "' vs '" << b << "'";
    }
  }
}

TEST(SimdPrefixSearch, CountLeMatchesScalarOnSliceArrays) {
  int count = 0;
  const SearchKernels* const* all = runnable_kernels(&count);
  const SearchKernels& ref = scalar_kernels();
  for (int fanout : {4, 8, 16, 32, 64}) {
    for (int n = 0; n <= fanout; ++n) {
      for (const auto& corpus : string_patterns(n)) {
        std::vector<std::uint64_t> slices;
        for (const auto& s : corpus) {
          slices.push_back(bytes_prefix(s.data(), s.size()));
        }
        // Probe with every corpus slice plus near-misses on both sides —
        // on the shared-prefix corpus these all collapse to one plateau
        // value, the duplicate-heavy extreme for count_le's masks.
        std::vector<std::uint64_t> pr = {0ull, ~0ull, 1ull << 63};
        for (std::uint64_t s : slices) {
          pr.push_back(s);
          pr.push_back(s - 1);
          pr.push_back(s + 1);
        }
        for (std::uint64_t probe : pr) {
          const int want = ref.count_le(slices.data(), n, probe);
          for (int k = 0; k < count; ++k) {
            ASSERT_EQ(all[k]->count_le(slices.data(), n, probe), want)
                << all[k]->name << " slice count_le n=" << n
                << " probe=" << probe;
          }
        }
      }
    }
  }
}

TEST(SimdPrefixSearch, FindEqPairsMatchesScalarOnSliceArrays) {
  int count = 0;
  const SearchKernels* const* all = runnable_kernels(&count);
  const SearchKernels& ref = scalar_kernels();
  for (int fanout : {4, 8, 16, 32, 64}) {
    for (int n = 0; n <= fanout; ++n) {
      for (const auto& corpus : string_patterns(n)) {
        std::vector<std::uint64_t> kv(2 * static_cast<std::size_t>(n));
        for (int i = 0; i < n; ++i) {
          const auto& s = corpus[static_cast<std::size_t>(i)];
          kv[2 * static_cast<std::size_t>(i)] = bytes_prefix(s.data(), s.size());
          kv[2 * static_cast<std::size_t>(i) + 1] =
              mix(static_cast<std::uint64_t>(i));
        }
        std::vector<std::uint64_t> pr = {0ull, ~0ull};
        for (int i = 0; i < n; ++i) {
          pr.push_back(kv[2 * static_cast<std::size_t>(i)]);
        }
        for (std::uint64_t probe : pr) {
          const int want = ref.find_eq_pairs(kv.data(), n, probe);
          for (int k = 0; k < count; ++k) {
            ASSERT_EQ(all[k]->find_eq_pairs(kv.data(), n, probe), want)
                << all[k]->name << " slice find_eq_pairs n=" << n
                << " probe=" << probe;
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace euno::trees::node::simd
