// Parameterized statistical tests over every distribution: range safety,
// determinism, monotone skew, and hot-mass calibration targets.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "workload/distributions.hpp"
#include "workload/ycsb.hpp"

namespace euno::workload {
namespace {

struct DistCase {
  DistKind kind;
  double param;
  std::uint64_t range;
  const char* name;
};

class DistributionSuite : public ::testing::TestWithParam<DistCase> {};

TEST_P(DistributionSuite, SamplesStayInRange) {
  const auto& p = GetParam();
  auto d = make_distribution(p.kind, p.range, p.param);
  Xoshiro256 rng(1);
  for (int i = 0; i < 20000; ++i) ASSERT_LT(d->sample(rng), p.range);
}

TEST_P(DistributionSuite, DeterministicGivenSeed) {
  const auto& p = GetParam();
  auto d1 = make_distribution(p.kind, p.range, p.param);
  auto d2 = make_distribution(p.kind, p.range, p.param);
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(d1->sample(a), d2->sample(b));
}

TEST_P(DistributionSuite, CoversManyDistinctValues) {
  const auto& p = GetParam();
  auto d = make_distribution(p.kind, p.range, p.param);
  Xoshiro256 rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 5000; ++i) seen.insert(d->sample(rng));
  EXPECT_GT(seen.size(), 20u) << "a degenerate point mass is not a distribution";
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, DistributionSuite,
    ::testing::Values(
        DistCase{DistKind::kUniform, 0, 10000, "uniform"},
        DistCase{DistKind::kZipfian, 0.2, 10000, "zipf02"},
        DistCase{DistKind::kZipfian, 0.9, 10000, "zipf09"},
        DistCase{DistKind::kZipfian, 0.99, 1 << 20, "zipf099_large"},
        DistCase{DistKind::kSelfSimilar, 0.2, 10000, "selfsim"},
        DistCase{DistKind::kSelfSimilar, 0.1, 10000, "selfsim_h01"},
        DistCase{DistKind::kNormal, 0.01, 10000, "normal"},
        DistCase{DistKind::kNormal, 0.0002, 1 << 20, "normal_narrow"},
        DistCase{DistKind::kPoisson, 0.70, 100000, "poisson70"},
        DistCase{DistKind::kPoisson, 0.90, 100000, "poisson90"}),
    [](const ::testing::TestParamInfo<DistCase>& info) {
      return info.param.name;
    });

TEST(DistributionShape, ZipfianHotMassMonotoneInTheta) {
  double prev = 0;
  for (double theta : {0.0, 0.3, 0.6, 0.9}) {
    auto d = make_distribution(DistKind::kZipfian, 50000, theta);
    const double hot = measure_hot10_fraction(*d, 100000, 5);
    EXPECT_GE(hot, prev - 0.01);
    prev = hot;
  }
}

TEST(DistributionShape, PoissonHotTargetsHit) {
  for (double target : {0.5, 0.7, 0.9}) {
    auto d = make_distribution(DistKind::kPoisson, 100000, target);
    EXPECT_NEAR(measure_hot10_fraction(*d, 200000, 6), target, 0.03)
        << "target=" << target;
  }
}

TEST(DistributionShape, NormalMassWithinWindow) {
  // With sigma_frac f, ±3σ around the mean must hold ~99.7% of samples.
  const std::uint64_t n = 1 << 20;
  for (double f : {0.01, 0.0002}) {
    NormalDist d(n, f);
    Xoshiro256 rng(8);
    const double mean = n / 2.0, sigma = f * mean;
    int inside = 0;
    for (int i = 0; i < 50000; ++i) {
      const double v = static_cast<double>(d.sample(rng));
      if (std::abs(v - mean) <= 3 * sigma) ++inside;
    }
    EXPECT_GT(inside / 50000.0, 0.99) << "sigma_frac=" << f;
  }
}

TEST(OpStreamParam, ScanLengthPropagates) {
  WorkloadSpec spec;
  spec.mix = OpMix{0, 0, 100, 0};
  spec.scan_len = 33;
  OpStream s(spec, 0);
  for (int i = 0; i < 10; ++i) {
    const Op op = s.next();
    EXPECT_EQ(op.type, OpType::kScan);
    EXPECT_EQ(op.scan_len, 33u);
  }
}

TEST(OpStreamParam, UnscrambledKeysEqualRanks) {
  WorkloadSpec spec;
  spec.scramble = false;
  spec.dist = DistKind::kZipfian;
  spec.dist_param = 0.99;
  spec.key_range = 1000;
  OpStream s(spec, 0);
  // With consecutive hot keys, the overwhelmingly most common key is 0.
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 20000; ++i) counts[s.next().key]++;
  const auto hottest =
      std::max_element(counts.begin(), counts.end(),
                       [](auto& a, auto& b) { return a.second < b.second; });
  EXPECT_EQ(hottest->first, 0u);
}

}  // namespace
}  // namespace euno::workload
