// Native-engine soak: every tree, 8 real threads on real RTM (when
// available), with inline value-purity and scan-order verification. Heavier
// than the conformance stress; values are a pure function of the key so any
// torn or stale read is caught at the op that observes it.
#include <gtest/gtest.h>

#include <cstdio>
#include <thread>
#include <vector>
#include <map>
#include "core/euno_tree.hpp"
#include "trees/htmbtree/htm_bptree.hpp"
#include "trees/olc/olc_bptree.hpp"
#include "ctx/native_ctx.hpp"
using namespace euno;
template <class Make>
void soak(const char* name, Make make, int threads, int ops) {
  ctx::NativeEnv env;
  ctx::NativeCtx setup(env, 0);
  auto tree = make(setup);
  std::vector<std::thread> ws;
  for (int t = 0; t < threads; ++t) {
    ws.emplace_back([&, t] {
      ctx::NativeCtx c(env, t);
      Xoshiro256 rng(t + 1);
      std::vector<trees::KV> buf(32);
      for (int i = 0; i < ops; ++i) {
        const trees::Key k = rng.next_bounded(4096);
        switch (rng.next_bounded(10)) {
          case 0: case 1: case 2: case 3: case 4:
            tree.put(c, k, k * 31 + 5); break;
          case 5: case 6: case 7: {
            trees::Value v;
            if (tree.get(c, k, &v) && v != k * 31 + 5) {
              GTEST_FAIL() << name << " value corruption key=" << k << " v=" << v;
            }
            break;
          }
          case 8: (void)tree.erase(c, k); break;
          case 9: {
            size_t n = tree.scan(c, k, buf.size(), buf.data());
            for (size_t j = 1; j < n; ++j) {
              if (buf[j].first <= buf[j-1].first) {
                GTEST_FAIL() << name << " scan order violation";
              }
            }
            break;
          }
        }
      }
    });
  }
  for (auto& w : ws) w.join();
  tree.check_invariants();
  ctx::NativeCtx v(env, 0);
  tree.destroy(v);
  printf("%s soak ok (%d threads x %d ops)\n", name, threads, ops);
}
TEST(NativeSoak, AllTrees) {
  soak("euno", [](ctx::NativeCtx& c){ return core::EunoBPTree<ctx::NativeCtx>(c, core::EunoConfig::full()); }, 8, 150000);
  soak("baseline", [](ctx::NativeCtx& c){ return trees::HtmBPTree<ctx::NativeCtx>(c); }, 8, 150000);
  soak("olc", [](ctx::NativeCtx& c){ return trees::OlcBPTree<ctx::NativeCtx>(c); }, 8, 150000);
  soak("htm-masstree", [](ctx::NativeCtx& c){
    typename trees::OlcBPTree<ctx::NativeCtx>::Options o; o.htm_elide = true;
    return trees::OlcBPTree<ctx::NativeCtx>(c, o); }, 8, 150000);
}

// Same soak under the hardened retry policy: backoff, anti-lemming waiting
// and the starvation hatch must not perturb correctness on real threads.
TEST(NativeSoak, HardenedPolicyAllTrees) {
  const htm::RetryPolicy hp = htm::RetryPolicy::hardened();
  soak("euno-hardened", [hp](ctx::NativeCtx& c){
    core::EunoConfig cfg = core::EunoConfig::full(); cfg.policy = hp;
    return core::EunoBPTree<ctx::NativeCtx>(c, cfg); }, 8, 100000);
  soak("baseline-hardened", [hp](ctx::NativeCtx& c){
    typename trees::HtmBPTree<ctx::NativeCtx>::Options o; o.policy = hp;
    return trees::HtmBPTree<ctx::NativeCtx>(c, o); }, 8, 100000);
  soak("htm-masstree-hardened", [hp](ctx::NativeCtx& c){
    typename trees::OlcBPTree<ctx::NativeCtx>::Options o;
    o.htm_elide = true; o.policy = hp;
    return trees::OlcBPTree<ctx::NativeCtx>(c, o); }, 8, 100000);
}

// Abort-storm soak at the context level: threads hammer one transactional
// counter while user-aborting half their HTM attempts, bounded by wall
// clock. Every txn() call must commit its increment exactly once (aborted
// attempts roll back in hardware; fallback runs are serial), whether or not
// the machine has RTM. Exercises the hardened wait/backoff/starvation paths
// under a real abort storm when RTM is present.
TEST(NativeSoak, AbortStormCountsExactly) {
  constexpr int kThreads = 8;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(3);
  ctx::NativeEnv env;
  alignas(128) static ctx::FallbackLock lock;
  lock.word.store(0);
  lock.degraded.store(0);
  lock.health_attempts.store(0);
  lock.health_commits.store(0);
  static std::uint64_t counter;
  counter = 0;

  htm::RetryPolicy policy = htm::RetryPolicy::hardened();
  policy.lock_wait_spin_cap = 1u << 12;

  std::vector<std::uint64_t> committed(kThreads, 0);
  std::vector<std::thread> ws;
  for (int t = 0; t < kThreads; ++t) {
    ws.emplace_back([&, t] {
      ctx::NativeCtx c(env, t);
      Xoshiro256 rng(0x570AA + t);
      std::uint64_t ops = 0;
      while (ops < 200000) {
        if ((ops & 1023) == 0 &&
            std::chrono::steady_clock::now() >= deadline) {
          break;
        }
        const bool storm = rng.next_bounded(2) == 0;
        c.txn(ctx::TxSite::kMono, lock, policy, [&] {
          // Only HTM attempts may abort; the fallback path runs the body to
          // completion under the lock.
          if (storm && !c.in_fallback()) c.tx_abort_user();
          const std::uint64_t v = c.read(counter);
          c.write(counter, v + 1);
        });
        ++ops;
      }
      committed[static_cast<std::size_t>(t)] = ops;
    });
  }
  for (auto& w : ws) w.join();

  std::uint64_t total = 0;
  for (auto v : committed) total += v;
  EXPECT_GT(total, 0u);
  EXPECT_EQ(counter, total) << "lost or duplicated transactional increments";
}
