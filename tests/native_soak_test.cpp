// Native-engine soak: every tree, 8 real threads on real RTM (when
// available), with inline value-purity and scan-order verification. Heavier
// than the conformance stress; values are a pure function of the key so any
// torn or stale read is caught at the op that observes it.
#include <gtest/gtest.h>

#include <cstdio>
#include <thread>
#include <vector>
#include <map>
#include "core/euno_tree.hpp"
#include "trees/htmbtree/htm_bptree.hpp"
#include "trees/olc/olc_bptree.hpp"
#include "ctx/native_ctx.hpp"
using namespace euno;
template <class Make>
void soak(const char* name, Make make, int threads, int ops) {
  ctx::NativeEnv env;
  ctx::NativeCtx setup(env, 0);
  auto tree = make(setup);
  std::vector<std::thread> ws;
  for (int t = 0; t < threads; ++t) {
    ws.emplace_back([&, t] {
      ctx::NativeCtx c(env, t);
      Xoshiro256 rng(t + 1);
      std::vector<trees::KV> buf(32);
      for (int i = 0; i < ops; ++i) {
        const trees::Key k = rng.next_bounded(4096);
        switch (rng.next_bounded(10)) {
          case 0: case 1: case 2: case 3: case 4:
            tree.put(c, k, k * 31 + 5); break;
          case 5: case 6: case 7: {
            trees::Value v;
            if (tree.get(c, k, &v) && v != k * 31 + 5) {
              GTEST_FAIL() << name << " value corruption key=" << k << " v=" << v;
            }
            break;
          }
          case 8: (void)tree.erase(c, k); break;
          case 9: {
            size_t n = tree.scan(c, k, buf.size(), buf.data());
            for (size_t j = 1; j < n; ++j) {
              if (buf[j].first <= buf[j-1].first) {
                GTEST_FAIL() << name << " scan order violation";
              }
            }
            break;
          }
        }
      }
    });
  }
  for (auto& w : ws) w.join();
  tree.check_invariants();
  ctx::NativeCtx v(env, 0);
  tree.destroy(v);
  printf("%s soak ok (%d threads x %d ops)\n", name, threads, ops);
}
TEST(NativeSoak, AllTrees) {
  soak("euno", [](ctx::NativeCtx& c){ return core::EunoBPTree<ctx::NativeCtx>(c, core::EunoConfig::full()); }, 8, 150000);
  soak("baseline", [](ctx::NativeCtx& c){ return trees::HtmBPTree<ctx::NativeCtx>(c); }, 8, 150000);
  soak("olc", [](ctx::NativeCtx& c){ return trees::OlcBPTree<ctx::NativeCtx>(c); }, 8, 150000);
  soak("htm-masstree", [](ctx::NativeCtx& c){
    typename trees::OlcBPTree<ctx::NativeCtx>::Options o; o.htm_elide = true;
    return trees::OlcBPTree<ctx::NativeCtx>(c, o); }, 8, 150000);
}
