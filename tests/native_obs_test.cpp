// End-to-end native observability: a run_native_experiment with the trace,
// metrics-interval and perf channels on must come back with per-thread event
// rings, a merged windowed time-series whose op counts reconcile with the
// run, and per-phase perf samples — and with every channel off it must
// collect nothing (the obs-off hot path stays un-instrumented).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "driver/experiment.hpp"
#include "obs/event.hpp"
#include "obs/manifest.hpp"

namespace euno::driver {
namespace {

ExperimentSpec native_spec(int threads) {
  ExperimentSpec spec;
  spec.tree = TreeKind::kEuno;
  spec.threads = threads;
  spec.workload.key_range = 1 << 14;
  spec.workload.dist = workload::DistKind::kZipfian;
  spec.workload.dist_param = 0.5;
  spec.workload.scramble = false;
  spec.preload = spec.workload.key_range / 2;
  spec.preload_stride = 2;
  spec.ops_per_thread = 2000;
  spec.machine.arena_bytes = 256ull << 20;
  return spec;
}

TEST(NativeObs, TraceRingsCarryPerThreadEvents) {
  ExperimentSpec spec = native_spec(2);
  spec.obs.trace = true;
  const auto r = run_native_experiment(spec);
  EXPECT_EQ(r.ops, 4000u);
  ASSERT_FALSE(r.trace.empty());
  const auto events = r.trace.merged();
  ASSERT_FALSE(events.empty());
  // Ring index = thread id: both workers must have recorded, clocks must be
  // merged in nondecreasing order, and the op-begin count must match the
  // ops actually run.
  bool saw_core[2] = {false, false};
  std::uint64_t op_begins = 0;
  std::uint64_t prev_clock = 0;
  for (const auto& ev : events) {
    ASSERT_GE(ev.core, 0);
    ASSERT_LT(ev.core, 2);
    saw_core[ev.core] = true;
    EXPECT_GE(ev.clock, prev_clock);
    prev_clock = ev.clock;
    if (static_cast<obs::EventCode>(ev.code) == obs::EventCode::kOpBegin) {
      op_begins++;
    }
  }
  EXPECT_TRUE(saw_core[0]);
  EXPECT_TRUE(saw_core[1]);
  EXPECT_EQ(op_begins, r.ops);
}

TEST(NativeObs, TimeseriesWindowsReconcileWithRun) {
  ExperimentSpec spec = native_spec(2);
  spec.obs.metrics_interval = 200000;  // 200 µs windows (wall ns natively)
  const auto r = run_native_experiment(spec);
  ASSERT_TRUE(r.timeseries.enabled());
  EXPECT_EQ(r.timeseries.interval, 200000u);
  EXPECT_EQ(r.timeseries.unit, "ns");
  ASSERT_FALSE(r.timeseries.windows.empty());
  std::uint64_t ops = 0;
  for (std::size_t i = 0; i < r.timeseries.windows.size(); ++i) {
    const auto& w = r.timeseries.windows[i];
    EXPECT_EQ(w.index, i) << "merged windows must be contiguous from 0";
    ops += w.ops;
    if (w.ops != 0) {
      EXPECT_LE(w.lat_p50, w.lat_p99);
      EXPECT_LE(w.lat_p99, w.lat_max);
    }
  }
  EXPECT_EQ(ops, r.ops)
      << "every completed op must land in exactly one window";
}

TEST(NativeObs, PerfChannelSamplesBothPhases) {
  ExperimentSpec spec = native_spec(2);
  spec.obs.perf = true;
  const auto r = run_native_experiment(spec);
  ASSERT_TRUE(r.perf.attempted);
  ASSERT_EQ(r.perf.phases.size(), 2u);
  EXPECT_EQ(r.perf.phases[0].phase, "preload");
  EXPECT_EQ(r.perf.phases[1].phase, "measure");
  for (const auto& phase : r.perf.phases) {
    EXPECT_EQ(phase.counters.size(), 5u);
    for (const auto& c : phase.counters) {
      if (!c.available) {
        EXPECT_FALSE(c.error.empty())
            << c.name << ": unavailable counters must say why";
      }
    }
  }
}

TEST(NativeObs, ObsOffCollectsNothing) {
  const auto r = run_native_experiment(native_spec(2));
  EXPECT_EQ(r.ops, 4000u);
  EXPECT_TRUE(r.trace.empty());
  EXPECT_FALSE(r.timeseries.enabled());
  EXPECT_FALSE(r.perf.attempted);
  EXPECT_EQ(r.op_latency.count(), 0u);
}

TEST(NativeObs, ManifestCarriesTimeseriesAndPerfSections) {
  ExperimentSpec spec = native_spec(2);
  spec.obs.latency = true;
  spec.obs.metrics_interval = 200000;
  spec.obs.perf = true;
  const auto r = run_native_experiment(spec);
  const std::string path = "native_obs_manifest_test.json";
  ASSERT_TRUE(obs::write_manifest(path, "native_obs_test", &spec, &r, 1));
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::stringstream ss;
  ss << f.rdbuf();
  const std::string doc = ss.str();
  EXPECT_NE(doc.find("\"timeseries\":"), std::string::npos);
  EXPECT_NE(doc.find("\"unit\":\"ns\""), std::string::npos);
  EXPECT_NE(doc.find("\"perf\":"), std::string::npos);
  EXPECT_NE(doc.find("\"phase\":\"preload\""), std::string::npos);
  EXPECT_NE(doc.find("\"metrics_interval\":200000"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace euno::driver
