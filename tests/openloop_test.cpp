// Open-loop traffic generation battery (`ctest -L store`): the arrival
// schedule is a pure function of (seed, client) — deterministic, replayable
// from a repro line, independent of store behavior — and a store-enabled
// open-loop experiment is bit-identical whether the sweep runs sequentially
// or fanned out over --jobs workers.
#include <gtest/gtest.h>

#include <vector>

#include "driver/experiment.hpp"
#include "driver/parallel.hpp"
#include "workload/openloop.hpp"

namespace euno::workload {
namespace {

OpenLoopSpec small_spec() {
  OpenLoopSpec s;
  s.seed = 99;
  s.clients = 4;
  s.mean_gap = 250.0;
  s.think = 0;
  return s;
}

std::vector<std::uint64_t> schedule_of(const OpenLoopSpec& s, int client,
                                       int n) {
  ArrivalStream a(s, client);
  std::vector<std::uint64_t> out;
  for (int i = 0; i < n; ++i) out.push_back(a.next(/*completion=*/0));
  return out;
}

TEST(ArrivalStream, DeterministicPerClientAndDecorrelatedAcrossClients) {
  const auto s = small_spec();
  EXPECT_EQ(schedule_of(s, 0, 200), schedule_of(s, 0, 200));
  EXPECT_NE(schedule_of(s, 0, 200), schedule_of(s, 1, 200));
  auto other_seed = s;
  other_seed.seed = 100;
  EXPECT_NE(schedule_of(s, 0, 200), schedule_of(other_seed, 0, 200));
}

TEST(ArrivalStream, ScheduleIsMonotoneWithMeanNearTarget) {
  const auto s = small_spec();
  ArrivalStream a(s, 2);
  std::uint64_t prev = 0;
  const int kN = 4000;
  std::uint64_t last = 0;
  for (int i = 0; i < kN; ++i) {
    const std::uint64_t t = a.next(0);
    ASSERT_GT(t, prev) << "arrival schedule must strictly advance";
    prev = t;
    last = t;
  }
  // Mean inter-arrival within 10% of the configured 250 cycles.
  const double mean = static_cast<double>(last) / kN;
  EXPECT_GT(mean, 225.0);
  EXPECT_LT(mean, 275.0);
}

TEST(ArrivalStream, LatenessDoesNotShiftTheSchedule) {
  // Open-loop property: a slow store (late completions) must not push
  // scheduled arrivals back. Without think time, the schedule is identical
  // whether completions kept up or lagged far behind.
  const auto s = small_spec();
  ArrivalStream on_time(s, 3);
  ArrivalStream lagging(s, 3);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t a = on_time.next(/*completion=*/0);
    const std::uint64_t b = lagging.next(/*completion=*/1000000 + 500ull * i);
    ASSERT_EQ(a, b);
  }
}

TEST(ArrivalStream, ThinkTimeOnlyFloorsTheIssue) {
  auto s = small_spec();
  s.think = 10000;  // far above the 250-cycle mean gap
  ArrivalStream a(s, 0);
  // An idle client (completion 0) issues on schedule...
  const std::uint64_t first = a.next(0);
  EXPECT_LT(first, 10000u);
  // ...a busy client's next issue is floored at completion + think.
  const std::uint64_t second = a.next(/*completion=*/50000);
  EXPECT_EQ(second, 60000u);
}

TEST(OpenLoopSpec, ReproLineRoundTrips) {
  OpenLoopSpec s;
  s.seed = 12345;
  s.clients = 7;
  s.mean_gap = 333.125;
  s.think = 42;
  const std::string line = s.repro();
  OpenLoopSpec parsed;
  ASSERT_TRUE(OpenLoopSpec::parse_repro(line, &parsed)) << line;
  EXPECT_EQ(parsed.seed, s.seed);
  EXPECT_EQ(parsed.clients, s.clients);
  EXPECT_EQ(parsed.mean_gap, s.mean_gap);  // %.17g: lossless for binary64
  EXPECT_EQ(parsed.think, s.think);

  // The replayed spec regenerates the exact schedule.
  EXPECT_EQ(schedule_of(s, 0, 300), schedule_of(parsed, 0, 300));

  OpenLoopSpec reject;
  EXPECT_FALSE(OpenLoopSpec::parse_repro("openloop seed=1", &reject));
  EXPECT_FALSE(OpenLoopSpec::parse_repro(
      "openloop seed=1 clients=0 mean_gap=5 think=0", &reject));
  EXPECT_FALSE(OpenLoopSpec::parse_repro(
      "openloop seed=1 clients=2 mean_gap=-5 think=0", &reject));
  EXPECT_FALSE(OpenLoopSpec::parse_repro("garbage", &reject));
}

TEST(DriftingOpStream, BitIdenticalToOpStreamWhenDriftOff) {
  WorkloadSpec w;
  w.key_range = 1 << 16;
  w.dist = DistKind::kZipfian;
  w.dist_param = 0.9;
  w.seed = 7;
  for (const double off : {-1.0, 0.9 /* drift_to == dist_param */}) {
    OpStream plain(w, 3);
    DriftingOpStream drifting(w, 3, off, 5000);
    for (int i = 0; i < 5000; ++i) {
      const Op a = plain.next();
      const Op b = drifting.next();
      ASSERT_EQ(a.type, b.type) << "off=" << off << " i=" << i;
      ASSERT_EQ(a.key, b.key) << "off=" << off << " i=" << i;
      ASSERT_EQ(a.value, b.value) << "off=" << off << " i=" << i;
    }
  }
}

TEST(DriftingOpStream, DriftMovesTheSampledPopulation) {
  // Drifting from uniform toward a hot zipfian must change the tail of the
  // stream (and only the tail: early ops sample the start distribution with
  // high probability).
  WorkloadSpec w;
  w.key_range = 1 << 16;
  w.dist = DistKind::kZipfian;
  w.dist_param = 0.0;  // uniform start
  w.seed = 11;
  constexpr int kN = 4000;
  OpStream plain(w, 0);
  DriftingOpStream drifting(w, 0, /*drift_to=*/0.99, kN);
  int diverged = 0;
  for (int i = 0; i < kN; ++i) {
    if (plain.next().key != drifting.next().key) diverged++;
  }
  EXPECT_GT(diverged, 0) << "drift never engaged";
}

// ---------------------------------------------------------------------------
// Full-stack determinism: a store-enabled open-loop experiment through the
// parallel sweep runner is bit-identical at --jobs=1 and --jobs=2, and
// across repeated runs (the repro contract every other spec already keeps).

TEST(OpenLoopExperiment, JobsFanOutIsBitIdentical) {
  driver::ExperimentSpec spec;
  spec.tree = driver::TreeKind::kEuno;
  spec.threads = 4;
  spec.ops_per_thread = 120;
  spec.workload.key_range = 1 << 12;
  spec.workload.scramble = false;
  spec.preload = 1 << 11;
  spec.machine.arena_bytes = 128ull << 20;
  spec.store.shards = 2;
  spec.store.offered_load_mops = 50.0;  // open loop, deliberately hot
  spec.store.shedding = true;
  spec.store.shard_rate_mops = 5.0;
  spec.store.deadline_us = 20;
  spec.store.drift_to = 0.9;

  auto second = spec;
  second.workload.seed = 43;
  const std::vector<driver::ExperimentSpec> specs{spec, second};

  const auto seq = driver::run_sim_experiments(specs, /*jobs=*/1);
  const auto par = driver::run_sim_experiments(specs, /*jobs=*/2);
  ASSERT_EQ(seq.size(), 2u);
  ASSERT_EQ(par.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(seq[i].ops, par[i].ops) << i;
    EXPECT_EQ(seq[i].sim_cycles, par[i].sim_cycles) << i;
    EXPECT_EQ(seq[i].admitted_ops, par[i].admitted_ops) << i;
    EXPECT_EQ(seq[i].shed_ops, par[i].shed_ops) << i;
    EXPECT_EQ(seq[i].deadline_exceeded, par[i].deadline_exceeded) << i;
    EXPECT_EQ(seq[i].shard_degradations, par[i].shard_degradations) << i;
    EXPECT_EQ(seq[i].aborts_total, par[i].aborts_total) << i;
  }
  // Different seeds must actually produce different runs (the comparison
  // above is not vacuous).
  EXPECT_NE(seq[0].sim_cycles, seq[1].sim_cycles);
}

}  // namespace
}  // namespace euno::workload
