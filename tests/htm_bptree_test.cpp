// Tests for the baseline HTM-B+Tree (monolithic-region DBX design).
#include <gtest/gtest.h>

#include "tree_conformance.hpp"
#include "trees/htmbtree/htm_bptree.hpp"

namespace euno::tests {
namespace {

struct NativeAdapter {
  static trees::HtmBPTree<ctx::NativeCtx> make(ctx::NativeCtx& c) {
    return trees::HtmBPTree<ctx::NativeCtx>(c);
  }
};
struct SimAdapter {
  static trees::HtmBPTree<ctx::SimCtx> make(ctx::SimCtx& c) {
    return trees::HtmBPTree<ctx::SimCtx>(c);
  }
};

EUNO_TREE_CONFORMANCE_SUITE(HtmBPTree, NativeAdapter, SimAdapter)

TEST(HtmBPTree, EmptyTreeBehaviour) {
  ctx::NativeEnv env;
  ctx::NativeCtx c(env, 0);
  auto tree = NativeAdapter::make(c);
  Value v = 0;
  EXPECT_FALSE(tree.get(c, 1, &v));
  EXPECT_FALSE(tree.erase(c, 1));
  KV buf[4];
  EXPECT_EQ(tree.scan(c, 0, 4, buf), 0u);
  tree.destroy(c);
}

TEST(HtmBPTree, UpdateOverwrites) {
  ctx::NativeEnv env;
  ctx::NativeCtx c(env, 0);
  auto tree = NativeAdapter::make(c);
  tree.put(c, 5, 10);
  tree.put(c, 5, 20);
  Value v = 0;
  ASSERT_TRUE(tree.get(c, 5, &v));
  EXPECT_EQ(v, 20u);
  EXPECT_EQ(tree.size_slow(), 1u);
  tree.destroy(c);
}

TEST(HtmBPTree, EraseThenReinsert) {
  ctx::NativeEnv env;
  ctx::NativeCtx c(env, 0);
  auto tree = NativeAdapter::make(c);
  for (Key k = 0; k < 100; ++k) tree.put(c, k, k);
  for (Key k = 0; k < 100; k += 2) EXPECT_TRUE(tree.erase(c, k));
  EXPECT_EQ(tree.size_slow(), 50u);
  for (Key k = 0; k < 100; k += 2) {
    Value v;
    EXPECT_FALSE(tree.get(c, k, &v));
    EXPECT_TRUE(tree.get(c, k + 1, &v));
  }
  for (Key k = 0; k < 100; k += 2) tree.put(c, k, k * 2);
  EXPECT_EQ(tree.size_slow(), 100u);
  tree.check_invariants();
  tree.destroy(c);
}

TEST(HtmBPTree, ScanRespectsOrderAcrossLeaves) {
  ctx::NativeEnv env;
  ctx::NativeCtx c(env, 0);
  auto tree = NativeAdapter::make(c);
  for (Key k = 0; k < 500; ++k) tree.put(c, k * 3, k);
  std::vector<KV> buf(100);
  const std::size_t n = tree.scan(c, 150, buf.size(), buf.data());
  ASSERT_EQ(n, 100u);
  EXPECT_EQ(buf[0].first, 150u);
  for (std::size_t i = 1; i < n; ++i) {
    EXPECT_EQ(buf[i].first, buf[i - 1].first + 3);
  }
  tree.destroy(c);
}

TEST(HtmBPTree, HeightGrowsLogarithmically) {
  ctx::NativeEnv env;
  ctx::NativeCtx c(env, 0);
  auto tree = NativeAdapter::make(c);
  EXPECT_EQ(tree.height(), 1);
  for (Key k = 0; k < 10000; ++k) tree.put(c, k, k);
  // fanout 16: 10000 keys fit within height 5.
  EXPECT_GE(tree.height(), 3);
  EXPECT_LE(tree.height(), 5);
  tree.destroy(c);
}

TEST(HtmBPTree, DestroyReturnsAllMemory) {
  auto& ms = MemStats::instance();
  ms.reset();
  ctx::NativeEnv env;
  ctx::NativeCtx c(env, 0);
  {
    auto tree = NativeAdapter::make(c);
    for (Key k = 0; k < 2000; ++k) tree.put(c, k, k);
    EXPECT_GT(ms.tree_live_bytes(), 0u);
    tree.destroy(c);
  }
  EXPECT_EQ(ms.tree_live_bytes(), 0u);
  ms.reset();
}

TEST(HtmBPTree, MonolithicAbortsUnderSimContention) {
  // Sanity: hammering one hot key from many simulated cores must produce
  // conflict aborts in the monolithic region (the premise of Figure 1/2).
  sim::Simulation simulation(test_sim_config());
  ctx::SimCtx setup(simulation, 0);
  auto tree = SimAdapter::make(setup);
  for (Key k = 0; k < 1000; ++k) tree.put(setup, k, k);

  std::vector<std::uint64_t> aborts(16);
  for (int t = 0; t < 16; ++t) {
    simulation.spawn(t, [&, t](int core) {
      ctx::SimCtx c(simulation, core);
      Xoshiro256 rng(900 + static_cast<std::uint64_t>(t));
      for (int i = 0; i < 300; ++i) {
        tree.put(c, rng.next_bounded(8), i);  // 8 hot keys
      }
      aborts[t] = c.stats().at(ctx::TxSite::kMono).total_aborts();
    });
  }
  simulation.run();
  std::uint64_t total = 0;
  for (auto a : aborts) total += a;
  EXPECT_GT(total, 100u) << "high contention must abort monolithic regions";
  tree.check_invariants();
  tree.destroy(setup);
}

}  // namespace
}  // namespace euno::tests
