// Tests for the workload generators: distribution shapes match the paper's
// parameterizations, op mixes honour their ratios, streams are deterministic.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "workload/distributions.hpp"
#include "workload/ycsb.hpp"

namespace euno::workload {
namespace {

constexpr std::uint64_t kN = 100000;
constexpr std::uint64_t kSamples = 200000;

TEST(Zipfian, UniformWhenThetaZero) {
  ZipfianDist z(kN, 0.0);
  EXPECT_NEAR(measure_hot10_fraction(z, kSamples, 1), 0.10, 0.01);
}

TEST(Zipfian, SkewGrowsWithTheta) {
  double prev = 0.0;
  for (double theta : {0.2, 0.5, 0.7, 0.9, 0.99}) {
    ZipfianDist z(kN, theta);
    const double hot = measure_hot10_fraction(z, kSamples, 2);
    EXPECT_GT(hot, prev) << "theta=" << theta;
    prev = hot;
  }
}

TEST(Zipfian, SamplerMatchesAnalyticPmf) {
  // The empirical hot-decile mass must match the analytic Zipf mass
  // Σ_{k≤n/10} k^-θ / Σ_{k≤n} k^-θ. (The paper's §5.1 prose quotes YCSB's
  // "41%" folklore figure, which does not correspond to this ratio at any
  // key range; we validate against the actual distribution.)
  for (double theta : {0.5, 0.9, 0.99}) {
    double hot_mass = 0, total_mass = 0;
    for (std::uint64_t k = 1; k <= kN; ++k) {
      const double p = std::pow(static_cast<double>(k), -theta);
      total_mass += p;
      if (k <= kN / 10) hot_mass += p;
    }
    ZipfianDist z(kN, theta);
    EXPECT_NEAR(measure_hot10_fraction(z, kSamples, 3), hot_mass / total_mass, 0.02)
        << "theta=" << theta;
  }
}

TEST(Zipfian, RanksWithinRange) {
  ZipfianDist z(1000, 0.9);
  Xoshiro256 rng(4);
  for (int i = 0; i < 10000; ++i) ASSERT_LT(z.sample(rng), 1000u);
}

TEST(Zipfian, Rank0IsHottest) {
  ZipfianDist z(kN, 0.9);
  Xoshiro256 rng(5);
  std::uint64_t rank0 = 0, rank_other = 0;
  for (int i = 0; i < 100000; ++i) {
    const auto r = z.sample(rng);
    if (r == 0) rank0++;
    if (r == kN / 2) rank_other++;
  }
  EXPECT_GT(rank0, rank_other * 10);
}

TEST(SelfSimilar, EightyTwentyRule) {
  SelfSimilarDist d(kN, 0.2);
  // 20% hottest keys get ~80% of accesses.
  Xoshiro256 rng(6);
  std::uint64_t hits = 0;
  for (std::uint64_t i = 0; i < kSamples; ++i) {
    if (d.sample(rng) < kN / 5) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kSamples, 0.80, 0.02);
}

TEST(SelfSimilar, SelfSimilarityWithinSubranges) {
  // Within the hottest 20% sub-range, the hottest 20% of *it* again draws
  // ~80% of that sub-range's accesses.
  SelfSimilarDist d(kN, 0.2);
  Xoshiro256 rng(7);
  std::uint64_t in_sub = 0, in_subsub = 0;
  for (std::uint64_t i = 0; i < kSamples * 4; ++i) {
    const auto r = d.sample(rng);
    if (r < kN / 5) {
      ++in_sub;
      if (r < kN / 25) ++in_subsub;
    }
  }
  EXPECT_NEAR(static_cast<double>(in_subsub) / static_cast<double>(in_sub), 0.80,
              0.03);
}

TEST(Normal, ConcentratedAroundMean) {
  NormalDist d(kN, 0.01);
  Xoshiro256 rng(8);
  const double mean = static_cast<double>(kN) / 2;
  std::uint64_t within_3sigma = 0;
  for (std::uint64_t i = 0; i < kSamples; ++i) {
    const auto r = d.sample(rng);
    if (std::abs(static_cast<double>(r) - mean) < 3 * 0.01 * mean) ++within_3sigma;
  }
  EXPECT_GT(static_cast<double>(within_3sigma) / kSamples, 0.99);
}

TEST(Poisson, CalibratedHotDecileCoverage) {
  // §5.5: 10% hottest records accessed by 70% of requests.
  auto d = make_distribution(DistKind::kPoisson, kN, 0.70);
  EXPECT_NEAR(measure_hot10_fraction(*d, kSamples, 9), 0.70, 0.02);
}

TEST(Poisson, CalibrationFormula) {
  EXPECT_NEAR(calibrate_poisson_hot_weight(0.70), (0.70 - 0.1) / 0.9, 1e-12);
  EXPECT_NEAR(calibrate_poisson_hot_weight(1.0), 1.0, 1e-12);
}

TEST(Factory, AllKindsConstructAndSample) {
  for (auto kind : {DistKind::kUniform, DistKind::kZipfian, DistKind::kSelfSimilar,
                    DistKind::kNormal, DistKind::kPoisson}) {
    auto d = make_distribution(kind, 1000, 0.5);
    ASSERT_NE(d, nullptr);
    Xoshiro256 rng(10);
    for (int i = 0; i < 1000; ++i) ASSERT_LT(d->sample(rng), 1000u);
  }
}

TEST(RankToKey, ScrambleStaysInRange) {
  for (std::uint64_t r = 0; r < 1000; ++r) {
    ASSERT_LT(rank_to_key(r, 1000, true), 1000u);
    ASSERT_EQ(rank_to_key(r, 1000, false), r);
  }
}

TEST(OpStream, MixRatiosRespected) {
  WorkloadSpec spec;
  spec.mix = OpMix{20, 80, 0, 0};
  spec.key_range = 1000;
  OpStream s(spec, 0);
  std::map<OpType, int> counts;
  for (int i = 0; i < 100000; ++i) counts[s.next().type]++;
  EXPECT_NEAR(counts[OpType::kGet] / 100000.0, 0.20, 0.01);
  EXPECT_NEAR(counts[OpType::kPut] / 100000.0, 0.80, 0.01);
}

TEST(OpStream, AllFourOpTypes) {
  WorkloadSpec spec;
  spec.mix = OpMix{40, 40, 10, 10};
  OpStream s(spec, 0);
  std::map<OpType, int> counts;
  for (int i = 0; i < 100000; ++i) counts[s.next().type]++;
  EXPECT_NEAR(counts[OpType::kScan] / 100000.0, 0.10, 0.01);
  EXPECT_NEAR(counts[OpType::kDelete] / 100000.0, 0.10, 0.01);
}

TEST(OpStream, DeterministicPerThreadAndDistinctAcrossThreads) {
  WorkloadSpec spec;
  OpStream a0(spec, 0), b0(spec, 0), a1(spec, 1);
  bool differs = false;
  for (int i = 0; i < 100; ++i) {
    const Op x = a0.next(), y = b0.next(), z = a1.next();
    ASSERT_EQ(x.key, y.key);
    ASSERT_EQ(x.type, y.type);
    if (x.key != z.key) differs = true;  // independent key streams per thread
  }
  EXPECT_TRUE(differs);
}

TEST(OpStream, KeysWithinRange) {
  WorkloadSpec spec;
  spec.key_range = 500;
  spec.dist = DistKind::kZipfian;
  spec.dist_param = 0.9;
  OpStream s(spec, 3);
  for (int i = 0; i < 10000; ++i) ASSERT_LT(s.next().key, 500u);
}

TEST(OpStream, InvalidMixRejected) {
  WorkloadSpec spec;
  spec.mix = OpMix{50, 60, 0, 0};
  EXPECT_DEATH({ OpStream s(spec, 0); }, "sum to 100");
}

TEST(WorkloadSpec, DescribeMentionsKeyFacts) {
  WorkloadSpec spec;
  spec.dist = DistKind::kZipfian;
  spec.dist_param = 0.9;
  const auto d = spec.describe();
  EXPECT_NE(d.find("zipfian"), std::string::npos);
  EXPECT_NE(d.find("0.9"), std::string::npos);
}

}  // namespace
}  // namespace euno::workload
