// Tests for the bench reporting utilities: table/CSV formatting and the
// shared CLI flag parser.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <string>

#include "stats/report.hpp"

namespace euno::stats {
namespace {

/// Captures stdout produced by `fn`.
template <class Fn>
std::string capture_stdout(Fn&& fn) {
  std::fflush(stdout);
  char buf[8192] = {};
  FILE* tmp = std::tmpfile();
  const int saved = dup(fileno(stdout));
  dup2(fileno(tmp), fileno(stdout));
  fn();
  std::fflush(stdout);
  dup2(saved, fileno(stdout));
  close(saved);
  std::rewind(tmp);
  const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, tmp);
  std::fclose(tmp);
  return std::string(buf, n);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(3.14159, 0), "3");
  EXPECT_EQ(Table::num(std::uint64_t{12345}), "12345");
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"1", "x"});
  t.add_row({"2", "y"});
  const auto out = capture_stdout([&] { t.print(/*csv=*/true); });
  EXPECT_EQ(out, "a,b\n1,x\n2,y\n");
}

TEST(Table, CsvQuotesCellsWithSeparators) {
  // RFC 4180: commas, quotes and newlines force quoting; embedded quotes
  // double.
  Table t({"label", "note"});
  t.add_row({"mix 20/80", "high, contended"});
  t.add_row({"say \"hi\"", "line\nbreak"});
  const auto out = capture_stdout([&] { t.print(/*csv=*/true); });
  EXPECT_EQ(out,
            "label,note\n"
            "mix 20/80,\"high, contended\"\n"
            "\"say \"\"hi\"\"\",\"line\nbreak\"\n");
}

TEST(Table, CsvLeavesPlainCellsUnquoted) {
  Table t({"h"});
  t.add_row({"plain_cell-1.5"});
  const auto out = capture_stdout([&] { t.print(/*csv=*/true); });
  EXPECT_EQ(out, "h\nplain_cell-1.5\n");
}

TEST(Table, AlignedOutputContainsAllCells) {
  Table t({"column", "v"});
  t.add_row({"row_one", "12.5"});
  t.add_row({"r2", "3"});
  const auto out = capture_stdout([&] { t.print(/*csv=*/false); });
  EXPECT_NE(out.find("column"), std::string::npos);
  EXPECT_NE(out.find("row_one"), std::string::npos);
  EXPECT_NE(out.find("12.5"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(BenchArgs, Defaults) {
  const char* argv[] = {"bench"};
  const auto a = BenchArgs::parse(1, const_cast<char**>(argv));
  EXPECT_FALSE(a.csv);
  EXPECT_FALSE(a.quick);
  EXPECT_EQ(a.ops_per_thread, 0u);
  EXPECT_EQ(a.key_range, 0u);
  EXPECT_EQ(a.seed, 42u);
}

TEST(BenchArgs, ParsesEveryFlag) {
  const char* argv[] = {"bench",      "--csv",        "--quick",
                        "--ops=1234", "--keys=65536", "--seed=7"};
  const auto a = BenchArgs::parse(6, const_cast<char**>(argv));
  EXPECT_TRUE(a.csv);
  EXPECT_TRUE(a.quick);
  EXPECT_EQ(a.ops_per_thread, 1234u);
  EXPECT_EQ(a.key_range, 65536u);
  EXPECT_EQ(a.seed, 7u);
}

TEST(BenchArgs, ParsesArtifactPaths) {
  const char* argv[] = {"bench", "--trace=/tmp/t.json", "--json=/tmp/r.json"};
  const auto a = BenchArgs::parse(3, const_cast<char**>(argv));
  EXPECT_EQ(a.trace_path, "/tmp/t.json");
  EXPECT_EQ(a.json_path, "/tmp/r.json");
}

using BenchArgsDeathTest = ::testing::Test;

TEST(BenchArgsDeathTest, RejectsUnknownFlags) {
  const char* argv[] = {"bench", "--frobnicate"};
  EXPECT_EXIT(BenchArgs::parse(2, const_cast<char**>(argv)),
              ::testing::ExitedWithCode(2), "unrecognized or malformed flag");
}

TEST(BenchArgsDeathTest, RejectsMalformedNumbers) {
  const char* jobs[] = {"bench", "--jobs=4x"};
  EXPECT_EXIT(BenchArgs::parse(2, const_cast<char**>(jobs)),
              ::testing::ExitedWithCode(2), "--jobs=4x");
  const char* ops[] = {"bench", "--ops=12q"};
  EXPECT_EXIT(BenchArgs::parse(2, const_cast<char**>(ops)),
              ::testing::ExitedWithCode(2), "--ops=12q");
  const char* seed[] = {"bench", "--seed="};
  EXPECT_EXIT(BenchArgs::parse(2, const_cast<char**>(seed)),
              ::testing::ExitedWithCode(2), "--seed=");
  const char* neg[] = {"bench", "--keys=-5"};
  EXPECT_EXIT(BenchArgs::parse(2, const_cast<char**>(neg)),
              ::testing::ExitedWithCode(2), "--keys=-5");
}

TEST(BenchArgs, WellFormedOutOfRangeJobsStillClamps) {
  // Rejection is for malformed input only; numeric nonsense keeps the
  // documented clamp-to-sequential behavior (scripts rely on it).
  const char* argv[] = {"bench", "--jobs=0"};
  EXPECT_EQ(BenchArgs::parse(2, const_cast<char**>(argv)).jobs, 1);
  const char* argv2[] = {"bench", "--jobs=-4"};
  EXPECT_EQ(BenchArgs::parse(2, const_cast<char**>(argv2)).jobs, 1);
}

}  // namespace
}  // namespace euno::stats
