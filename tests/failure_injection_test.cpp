// Failure-injection tests: hostile machine configurations and degenerate
// retry policies must degrade performance, never correctness.
//   - zero retry budgets        → every region serializes on the fallback lock
//   - tiny HTM capacity         → capacity aborts everywhere, fallback rescues
//   - 100% mutual destruction   → pairwise livelock, fallback guarantees progress
//   - pathological latencies    → ordering-only sanity
#include <gtest/gtest.h>

#include <map>

#include "core/euno_tree.hpp"
#include "driver/experiment.hpp"
#include "tree_conformance.hpp"
#include "trees/htmbtree/htm_bptree.hpp"

namespace euno::tests {
namespace {

template <class MakeTree>
void run_hostile_sim(sim::MachineConfig cfg, MakeTree make, int threads,
                     int ops_per_thread) {
  cfg.arena_bytes = 256ull << 20;
  sim::Simulation simulation(cfg);
  ctx::SimCtx setup(simulation, 0);
  auto tree = make(setup);
  for (int t = 0; t < threads; ++t) {
    simulation.spawn(t, [&, t](int core) {
      ctx::SimCtx c(simulation, core);
      Xoshiro256 rng(500 + static_cast<std::uint64_t>(t));
      for (int i = 0; i < ops_per_thread; ++i) {
        const Key key = rng.next_bounded(64);
        if (rng.next_bounded(2) == 0) {
          tree.put(c, key, key + 1);
        } else {
          Value v;
          if (tree.get(c, key, &v)) ASSERT_EQ(v, key + 1);
        }
      }
    });
  }
  simulation.run();
  tree.check_invariants();
  tree.destroy(setup);
}

core::EunoConfig zero_retry_config() {
  core::EunoConfig cfg = core::EunoConfig::full();
  cfg.policy.conflict_retries = 0;
  cfg.policy.capacity_retries = 0;
  cfg.policy.other_retries = 0;
  return cfg;
}

TEST(FailureInjection, ZeroRetryBudgetStillCorrect_Euno) {
  run_hostile_sim(
      sim::MachineConfig{},
      [](ctx::SimCtx& c) {
        return core::EunoBPTree<ctx::SimCtx>(c, zero_retry_config());
      },
      8, 300);
}

TEST(FailureInjection, ZeroRetryBudgetStillCorrect_Baseline) {
  run_hostile_sim(
      sim::MachineConfig{},
      [](ctx::SimCtx& c) {
        typename trees::HtmBPTree<ctx::SimCtx>::Options opt;
        opt.policy.conflict_retries = 0;
        opt.policy.capacity_retries = 0;
        opt.policy.other_retries = 0;
        return trees::HtmBPTree<ctx::SimCtx>(c, opt);
      },
      8, 300);
}

TEST(FailureInjection, TinyCapacityForcesFallbackButStaysCorrect) {
  sim::MachineConfig cfg;
  cfg.htm.write_capacity_lines = 2;
  cfg.htm.read_capacity_lines = 6;
  // Every traversal overflows the read set; ops complete via fallback.
  run_hostile_sim(
      cfg,
      [](ctx::SimCtx& c) {
        return core::EunoBPTree<ctx::SimCtx>(c, core::EunoConfig::full());
      },
      6, 200);
}

TEST(FailureInjection, TotalMutualDestructionCannotLivelock) {
  sim::MachineConfig cfg;
  cfg.htm.mutual_abort_pct = 100;  // every conflict kills both parties
  run_hostile_sim(
      cfg,
      [](ctx::SimCtx& c) {
        return trees::HtmBPTree<ctx::SimCtx>(c);
      },
      12, 250);
}

TEST(FailureInjection, ExtremeLatencySkew) {
  sim::MachineConfig cfg;
  cfg.latency.l1_hit = 1;
  cfg.latency.local_cache = 500;
  cfg.latency.remote_cache = 2000;
  cfg.latency.dram = 3000;
  run_hostile_sim(
      cfg,
      [](ctx::SimCtx& c) {
        return core::EunoBPTree<ctx::SimCtx>(c, core::EunoConfig::full());
      },
      6, 150);
}

TEST(FailureInjection, CapacityAbortsAreCountedAsCapacity) {
  sim::MachineConfig cfg;
  cfg.htm.read_capacity_lines = 4;
  cfg.arena_bytes = 256ull << 20;
  sim::Simulation simulation(cfg);
  ctx::SimCtx setup(simulation, 0);
  trees::HtmBPTree<ctx::SimCtx> tree(setup);
  for (Key k = 0; k < 2000; ++k) tree.put(setup, k, k);

  htm::TxStats st;
  simulation.spawn(0, [&](int core) {
    ctx::SimCtx c(simulation, core);
    Value v;
    for (Key k = 0; k < 50; ++k) (void)tree.get(c, k * 37, &v);
    st = c.stats().total();
  });
  simulation.run();
  EXPECT_GT(st.aborts[static_cast<int>(htm::AbortReason::kCapacity)], 0u);
  EXPECT_GT(st.fallbacks, 0u);
  tree.destroy(setup);
}

// ---- hardened retry/fallback path (DESIGN.md §10) ----

// Under total mutual destruction plus scripted abort bursts, the hardened
// policy (jittered backoff + anti-lemming + starvation hatch) must complete
// the same workload with strictly fewer fallback acquisitions than the naive
// DBX policy: desynchronized retries let HTM succeed where the naive convoy
// exhausts its budget and serializes.
TEST(FailureInjection, HardenedPolicyBeatsNaiveUnderAbortStorm) {
  driver::ExperimentSpec spec;
  spec.tree = driver::TreeKind::kHtmBPTree;
  spec.threads = 8;
  spec.workload.key_range = 1 << 8;  // hot: everyone collides
  spec.workload.mix = workload::OpMix{40, 60, 0, 0};
  spec.preload = 128;
  spec.ops_per_thread = 500;
  spec.machine.htm.mutual_abort_pct = 100;
  spec.machine.arena_bytes = 128ull << 20;
  spec.machine.fault.bursts = {{10000, 5000, 100}, {40000, 5000, 100}};

  auto naive = spec;
  naive.policy = htm::RetryPolicy::naive();
  const auto rn = run_sim_experiment(naive);

  auto hardened = spec;
  hardened.policy = htm::RetryPolicy::hardened();
  const auto rh = run_sim_experiment(hardened);

  ASSERT_GT(rn.fallbacks, 0u) << "regime too mild to exercise the fallback";
  EXPECT_LT(rh.fallbacks, rn.fallbacks);
  EXPECT_GT(rh.backoff_cycles, 0u);
  EXPECT_EQ(rn.backoff_cycles, 0u);  // naive path never backs off
  EXPECT_GT(rh.commits, 0u);
}

// A tree whose HTM never commits (100% abort burst) must be flipped to
// permanent lock-only mode by the health monitor: exactly one degradation
// event, and the workload still completes via the lock.
TEST(FailureInjection, HealthMonitorDegradesToLockOnly) {
  driver::ExperimentSpec spec;
  spec.tree = driver::TreeKind::kHtmBPTree;
  spec.threads = 4;
  spec.workload.key_range = 1 << 10;
  spec.workload.mix = workload::OpMix{50, 50, 0, 0};
  spec.preload = 128;
  spec.ops_per_thread = 300;
  spec.machine.arena_bytes = 128ull << 20;
  // From the first instrumented access on (preload runs uninstrumented at
  // step 0 and must stay healthy), HTM can never commit.
  spec.machine.fault.bursts = {{1, 1u << 30, 100}};
  spec.policy = htm::RetryPolicy::hardened();
  spec.policy.health_window = 32;
  spec.policy.health_min_commit_pct = 50;

  const auto r = run_sim_experiment(spec);
  EXPECT_EQ(r.degradations, 1u);  // the CAS admits exactly one flipper
  EXPECT_GT(r.fallbacks, 0u);
  EXPECT_GT(r.commits, 0u);
  EXPECT_GT(r.ops, 0u);
}

// A leaked fallback lock (holder exits without releasing) must not hang a
// hardened context: bounded waiting counts timeouts, and after
// lock_wait_timeout_limit timed-out episodes the sim-only rescue runs the
// transaction unsubscribed and completes under HTM.
TEST(FailureInjection, LeakedLockCannotHangHardenedContext) {
  sim::MachineConfig cfg;
  cfg.arena_bytes = 64ull << 20;
  sim::Simulation simulation(cfg);
  ctx::SimCtx setup(simulation, 0);
  auto* lock = static_cast<ctx::FallbackLock*>(setup.alloc(
      sizeof(ctx::FallbackLock), MemClass::kTreeMisc,
      sim::LineKind::kFallbackLock));
  new (lock) ctx::FallbackLock();
  auto* cell = static_cast<std::uint64_t*>(setup.alloc(
      sizeof(std::uint64_t), MemClass::kTreeMisc, sim::LineKind::kRecord));
  *cell = 0;

  htm::RetryPolicy policy = htm::RetryPolicy::hardened();
  policy.lock_wait_spin_cap = 64;
  policy.lock_wait_timeout_limit = 2;

  htm::TxStats st;
  // Core 0: acquire the lock and exit without releasing (a crashed /
  // descheduled-forever holder).
  simulation.spawn(0, [&](int core) {
    ctx::SimCtx c(simulation, core);
    ASSERT_TRUE(c.cas<std::uint32_t>(lock->word, 0, 1));
  });
  // Core 1: must still complete its transaction.
  simulation.spawn(1, [&](int core) {
    ctx::SimCtx c(simulation, core);
    c.compute(5000);  // let the holder acquire (and die) first
    const auto out = c.txn(ctx::TxSite::kMono, *lock, policy,
                           [&] { c.write(*cell, std::uint64_t{42}); });
    EXPECT_FALSE(out.used_fallback);
    st = c.stats().total();
  });
  simulation.run();

  EXPECT_EQ(*cell, 42u);
  EXPECT_GE(st.lock_wait_timeouts, 2u);
  EXPECT_GE(st.unsubscribed_attempts, 1u);
  EXPECT_EQ(st.commits, 1u);
  EXPECT_GT(st.lock_wait_cycles, 0u);
  setup.free(lock, sizeof(ctx::FallbackLock), MemClass::kTreeMisc);
  setup.free(cell, sizeof(std::uint64_t), MemClass::kTreeMisc);
}

// The full hardened feature set under a hostile machine must stay correct
// (conformance-style invariants via run_hostile_sim).
TEST(FailureInjection, HardenedPolicyStaysCorrectUnderMutualDestruction) {
  sim::MachineConfig cfg;
  cfg.htm.mutual_abort_pct = 100;
  core::EunoConfig ecfg = core::EunoConfig::full();
  ecfg.policy = htm::RetryPolicy::hardened();
  ecfg.policy.health_window = 256;
  run_hostile_sim(
      cfg,
      [ecfg](ctx::SimCtx& c) {
        return core::EunoBPTree<ctx::SimCtx>(c, ecfg);
      },
      8, 250);
}

TEST(FailureInjection, DriverWithScansAndDeletesUnderHostileMachine) {
  driver::ExperimentSpec spec;
  spec.tree = driver::TreeKind::kEuno;
  spec.threads = 8;
  spec.workload.key_range = 1 << 12;
  spec.workload.mix = workload::OpMix{30, 40, 15, 15};
  spec.workload.dist_param = 0.9;
  spec.workload.scramble = false;
  spec.preload = 1 << 11;
  spec.ops_per_thread = 400;
  spec.machine.htm.mutual_abort_pct = 90;
  spec.machine.arena_bytes = 256ull << 20;
  spec.policy.conflict_retries = 1;
  const auto r = run_sim_experiment(spec);
  EXPECT_EQ(r.ops, 3200u);
  EXPECT_GT(r.throughput_mops, 0.0);
}

}  // namespace
}  // namespace euno::tests
