// Failure-injection tests: hostile machine configurations and degenerate
// retry policies must degrade performance, never correctness.
//   - zero retry budgets        → every region serializes on the fallback lock
//   - tiny HTM capacity         → capacity aborts everywhere, fallback rescues
//   - 100% mutual destruction   → pairwise livelock, fallback guarantees progress
//   - pathological latencies    → ordering-only sanity
#include <gtest/gtest.h>

#include <map>

#include "core/euno_tree.hpp"
#include "driver/experiment.hpp"
#include "tree_conformance.hpp"
#include "trees/htmbtree/htm_bptree.hpp"

namespace euno::tests {
namespace {

template <class MakeTree>
void run_hostile_sim(sim::MachineConfig cfg, MakeTree make, int threads,
                     int ops_per_thread) {
  cfg.arena_bytes = 256ull << 20;
  sim::Simulation simulation(cfg);
  ctx::SimCtx setup(simulation, 0);
  auto tree = make(setup);
  for (int t = 0; t < threads; ++t) {
    simulation.spawn(t, [&, t](int core) {
      ctx::SimCtx c(simulation, core);
      Xoshiro256 rng(500 + static_cast<std::uint64_t>(t));
      for (int i = 0; i < ops_per_thread; ++i) {
        const Key key = rng.next_bounded(64);
        if (rng.next_bounded(2) == 0) {
          tree.put(c, key, key + 1);
        } else {
          Value v;
          if (tree.get(c, key, &v)) ASSERT_EQ(v, key + 1);
        }
      }
    });
  }
  simulation.run();
  tree.check_invariants();
  tree.destroy(setup);
}

core::EunoConfig zero_retry_config() {
  core::EunoConfig cfg = core::EunoConfig::full();
  cfg.policy.conflict_retries = 0;
  cfg.policy.capacity_retries = 0;
  cfg.policy.other_retries = 0;
  return cfg;
}

TEST(FailureInjection, ZeroRetryBudgetStillCorrect_Euno) {
  run_hostile_sim(
      sim::MachineConfig{},
      [](ctx::SimCtx& c) {
        return core::EunoBPTree<ctx::SimCtx>(c, zero_retry_config());
      },
      8, 300);
}

TEST(FailureInjection, ZeroRetryBudgetStillCorrect_Baseline) {
  run_hostile_sim(
      sim::MachineConfig{},
      [](ctx::SimCtx& c) {
        typename trees::HtmBPTree<ctx::SimCtx>::Options opt;
        opt.policy.conflict_retries = 0;
        opt.policy.capacity_retries = 0;
        opt.policy.other_retries = 0;
        return trees::HtmBPTree<ctx::SimCtx>(c, opt);
      },
      8, 300);
}

TEST(FailureInjection, TinyCapacityForcesFallbackButStaysCorrect) {
  sim::MachineConfig cfg;
  cfg.htm.write_capacity_lines = 2;
  cfg.htm.read_capacity_lines = 6;
  // Every traversal overflows the read set; ops complete via fallback.
  run_hostile_sim(
      cfg,
      [](ctx::SimCtx& c) {
        return core::EunoBPTree<ctx::SimCtx>(c, core::EunoConfig::full());
      },
      6, 200);
}

TEST(FailureInjection, TotalMutualDestructionCannotLivelock) {
  sim::MachineConfig cfg;
  cfg.htm.mutual_abort_pct = 100;  // every conflict kills both parties
  run_hostile_sim(
      cfg,
      [](ctx::SimCtx& c) {
        return trees::HtmBPTree<ctx::SimCtx>(c);
      },
      12, 250);
}

TEST(FailureInjection, ExtremeLatencySkew) {
  sim::MachineConfig cfg;
  cfg.latency.l1_hit = 1;
  cfg.latency.local_cache = 500;
  cfg.latency.remote_cache = 2000;
  cfg.latency.dram = 3000;
  run_hostile_sim(
      cfg,
      [](ctx::SimCtx& c) {
        return core::EunoBPTree<ctx::SimCtx>(c, core::EunoConfig::full());
      },
      6, 150);
}

TEST(FailureInjection, CapacityAbortsAreCountedAsCapacity) {
  sim::MachineConfig cfg;
  cfg.htm.read_capacity_lines = 4;
  cfg.arena_bytes = 256ull << 20;
  sim::Simulation simulation(cfg);
  ctx::SimCtx setup(simulation, 0);
  trees::HtmBPTree<ctx::SimCtx> tree(setup);
  for (Key k = 0; k < 2000; ++k) tree.put(setup, k, k);

  htm::TxStats st;
  simulation.spawn(0, [&](int core) {
    ctx::SimCtx c(simulation, core);
    Value v;
    for (Key k = 0; k < 50; ++k) (void)tree.get(c, k * 37, &v);
    st = c.stats().total();
  });
  simulation.run();
  EXPECT_GT(st.aborts[static_cast<int>(htm::AbortReason::kCapacity)], 0u);
  EXPECT_GT(st.fallbacks, 0u);
  tree.destroy(setup);
}

TEST(FailureInjection, DriverWithScansAndDeletesUnderHostileMachine) {
  driver::ExperimentSpec spec;
  spec.tree = driver::TreeKind::kEuno;
  spec.threads = 8;
  spec.workload.key_range = 1 << 12;
  spec.workload.mix = workload::OpMix{30, 40, 15, 15};
  spec.workload.dist_param = 0.9;
  spec.workload.scramble = false;
  spec.preload = 1 << 11;
  spec.ops_per_thread = 400;
  spec.machine.htm.mutual_abort_pct = 90;
  spec.machine.arena_bytes = 256ull << 20;
  spec.policy.conflict_retries = 1;
  const auto r = run_sim_experiment(spec);
  EXPECT_EQ(r.ops, 3200u);
  EXPECT_GT(r.throughput_mops, 0.0);
}

}  // namespace
}  // namespace euno::tests
