// Repro-line test main: on any test failure, print a single copy-pastable
// command that reruns exactly that test — binary, --gtest_filter, and
// whatever extra context (seed, param string, replay spec) the test body
// registered via repro_extra().
//
// Use in place of gtest_main:
//   #include "repro_main.hpp"
//   ... TESTs ...
//   EUNO_TEST_MAIN_WITH_REPRO()
// and in parameterized bodies:
//   euno::tests::repro_extra() = "# replay: " + lin_repro_line(spec);
#pragma once

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace euno::tests {

/// Extra context appended to the failing test's repro line. Cleared before
/// every test; set it early in the body (before any assertion can fail).
inline std::string& repro_extra() {
  static std::string s;
  return s;
}

inline const char*& repro_argv0() {
  static const char* a = "<binary>";
  return a;
}

class ReproListener : public ::testing::EmptyTestEventListener {
  void OnTestStart(const ::testing::TestInfo&) override { repro_extra().clear(); }

  void OnTestEnd(const ::testing::TestInfo& info) override {
    const auto* result = info.result();
    if (result == nullptr || !result->Failed()) return;
    std::fprintf(stderr, "REPRO: %s --gtest_filter=%s.%s%s%s\n", repro_argv0(),
                 info.test_suite_name(), info.name(),
                 repro_extra().empty() ? "" : "  ", repro_extra().c_str());
  }
};

inline int run_all_tests_with_repro(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  repro_argv0() = argv[0];
  ::testing::UnitTest::GetInstance()->listeners().Append(new ReproListener);
  return RUN_ALL_TESTS();
}

}  // namespace euno::tests

#define EUNO_TEST_MAIN_WITH_REPRO()                             \
  int main(int argc, char** argv) {                             \
    return euno::tests::run_all_tests_with_repro(argc, argv);   \
  }
