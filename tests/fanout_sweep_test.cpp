// Fanout sweep: the trees templated at non-default fanouts exercise
// different split/merge boundaries, segment geometries and CCM vector sizes.
// Each instantiation runs an oracle workload and a simulated concurrency
// pass with invariant checks.
#include <gtest/gtest.h>

#include <map>

#include "core/euno_tree.hpp"
#include "tree_conformance.hpp"
#include "trees/htmbtree/htm_bptree.hpp"
#include "trees/olc/olc_bptree.hpp"

namespace euno::tests {
namespace {

template <class Tree>
void oracle_pass(Tree& tree, ctx::NativeCtx& c, std::uint64_t seed) {
  std::map<Key, Value> oracle;
  Xoshiro256 rng(seed);
  for (int i = 0; i < 8000; ++i) {
    const Key key = rng.next_bounded(900);
    switch (rng.next_bounded(4)) {
      case 0:
      case 1: {
        const Value v = rng.next();
        tree.put(c, key, v);
        oracle[key] = v;
        break;
      }
      case 2: {
        Value v = 0;
        const bool f = tree.get(c, key, &v);
        ASSERT_EQ(f, oracle.count(key) == 1);
        if (f) ASSERT_EQ(v, oracle[key]);
        break;
      }
      case 3:
        ASSERT_EQ(tree.erase(c, key), oracle.erase(key) > 0);
        break;
    }
  }
  tree.check_invariants();
  ASSERT_EQ(tree.size_slow(), oracle.size());
}

template <class Tree, class Make>
void sim_pass(Make make) {
  sim::Simulation simulation(test_sim_config());
  ctx::SimCtx setup(simulation, 0);
  auto tree = make(setup);
  for (int t = 0; t < 6; ++t) {
    simulation.spawn(t, [&, t](int core) {
      ctx::SimCtx c(simulation, core);
      Xoshiro256 rng(800 + static_cast<std::uint64_t>(t));
      for (int i = 0; i < 250; ++i) {
        const Key k = rng.next_bounded(128);
        if (rng.next_bounded(2) == 0) {
          tree.put(c, k, k * 13 + 1);
        } else {
          Value v;
          if (tree.get(c, k, &v)) ASSERT_EQ(v, k * 13 + 1);
        }
      }
    });
  }
  simulation.run();
  tree.check_invariants();
  tree.destroy(setup);
}

template <int F>
void baseline_fanout() {
  ctx::NativeEnv env;
  ctx::NativeCtx c(env, 0);
  trees::HtmBPTree<ctx::NativeCtx, F> tree(c);
  oracle_pass(tree, c, 100 + F);
  tree.destroy(c);
  sim_pass<trees::HtmBPTree<ctx::SimCtx, F>>(
      [](ctx::SimCtx& c2) { return trees::HtmBPTree<ctx::SimCtx, F>(c2); });
}

TEST(FanoutSweep, Baseline4) { baseline_fanout<4>(); }
TEST(FanoutSweep, Baseline8) { baseline_fanout<8>(); }
TEST(FanoutSweep, Baseline32) { baseline_fanout<32>(); }
TEST(FanoutSweep, Baseline64) { baseline_fanout<64>(); }

template <int F>
void olc_fanout() {
  ctx::NativeEnv env;
  ctx::NativeCtx c(env, 0);
  trees::OlcBPTree<ctx::NativeCtx, F> tree(c);
  oracle_pass(tree, c, 200 + F);
  tree.destroy(c);
  sim_pass<trees::OlcBPTree<ctx::SimCtx, F>>(
      [](ctx::SimCtx& c2) { return trees::OlcBPTree<ctx::SimCtx, F>(c2); });
}

TEST(FanoutSweep, Olc4) { olc_fanout<4>(); }
TEST(FanoutSweep, Olc8) { olc_fanout<8>(); }
TEST(FanoutSweep, Olc32) { olc_fanout<32>(); }

template <int F, int S>
void euno_fanout() {
  ctx::NativeEnv env;
  ctx::NativeCtx c(env, 0);
  core::EunoBPTree<ctx::NativeCtx, F, S> tree(c, core::EunoConfig::full());
  oracle_pass(tree, c, 300 + F * 10 + S);
  tree.destroy(c);
  sim_pass<core::EunoBPTree<ctx::SimCtx, F, S>>([](ctx::SimCtx& c2) {
    return core::EunoBPTree<ctx::SimCtx, F, S>(c2, core::EunoConfig::full());
  });
}

TEST(FanoutSweep, Euno8x2) { euno_fanout<8, 2>(); }
TEST(FanoutSweep, Euno8x4) { euno_fanout<8, 4>(); }
// F=24 is Euno's compile-time maximum: the CCM (2F slot bytes) plus the
// control words must share one cache line.
TEST(FanoutSweep, Euno24x4) { euno_fanout<24, 4>(); }
TEST(FanoutSweep, Euno24x8) { euno_fanout<24, 8>(); }
TEST(FanoutSweep, Euno24x2) { euno_fanout<24, 2>(); }
TEST(FanoutSweep, Euno4x1) { euno_fanout<4, 1>(); }

}  // namespace
}  // namespace euno::tests
