// Semantics tests for the simulated HTM: atomicity, rollback, requester-wins
// conflicts, strong atomicity, capacity aborts, and conflict classification.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/txabort.hpp"

namespace euno::sim {
namespace {

MachineConfig small_config() {
  MachineConfig cfg;
  cfg.arena_bytes = 16ull << 20;
  return cfg;
}

std::uint64_t* alloc_u64(Simulation& sim, LineKind kind) {
  return static_cast<std::uint64_t*>(sim.arena().alloc(8, MemClass::kOther, kind));
}

// Runs `work` in a fiber on core `core`, catching aborts into `out`.
struct AbortRecord {
  bool aborted = false;
  htm::TxResult result{};
};

TEST(SimHtm, CommitPublishesWrites) {
  Simulation sim(small_config());
  auto* x = alloc_u64(sim, LineKind::kOther);
  sim.spawn(0, [&](int core) {
    sim.htm().tx_begin(core);
    sim.mem_access(x, 8, true);
    *x = 7;
    sim.htm().tx_commit(core);
  });
  sim.run();
  EXPECT_EQ(*x, 7u);
}

TEST(SimHtm, ExplicitAbortRollsBackWrites) {
  Simulation sim(small_config());
  auto* x = alloc_u64(sim, LineKind::kOther);
  *x = 1;
  AbortRecord rec;
  sim.spawn(0, [&](int core) {
    sim.htm().tx_begin(core);
    try {
      sim.mem_access(x, 8, true);
      *x = 99;
      sim.htm().tx_abort_explicit(core, htm::xabort_code::kUser);
    } catch (const TxAbortException& e) {
      sim.htm().on_abort_handled(core);
      rec.aborted = true;
      rec.result = e.result;
    }
  });
  sim.run();
  EXPECT_TRUE(rec.aborted);
  EXPECT_EQ(rec.result.reason, htm::AbortReason::kExplicit);
  EXPECT_EQ(rec.result.xabort_payload, htm::xabort_code::kUser);
  EXPECT_EQ(*x, 1u) << "aborted writes must be undone";
}

TEST(SimHtm, UndoRestoresInReverseOrder) {
  Simulation sim(small_config());
  auto* x = alloc_u64(sim, LineKind::kOther);
  *x = 10;
  sim.spawn(0, [&](int core) {
    sim.htm().tx_begin(core);
    try {
      sim.mem_access(x, 8, true);
      *x = 20;
      sim.mem_access(x, 8, true);
      *x = 30;
      sim.htm().tx_abort_explicit(core, htm::xabort_code::kUser);
    } catch (const TxAbortException&) {
      sim.htm().on_abort_handled(core);
    }
  });
  sim.run();
  EXPECT_EQ(*x, 10u) << "rollback must restore the pre-transaction value";
}

TEST(SimHtm, WriterAbortsConcurrentReader) {
  Simulation sim(small_config());
  auto* x = alloc_u64(sim, LineKind::kOther);
  AbortRecord rec;
  bool committed = false;
  sim.spawn(0, [&](int core) {  // reader transaction
    sim.htm().tx_begin(core);
    try {
      sim.mem_access(x, 8, false);
      sim.charge(10000);  // give the writer time to run
      sim.mem_access(x, 8, false);
      sim.htm().tx_commit(core);
      committed = true;
    } catch (const TxAbortException& e) {
      sim.htm().on_abort_handled(core);
      rec.aborted = true;
      rec.result = e.result;
    }
  });
  sim.spawn(1, [&](int) {  // non-transactional writer
    sim.charge(1000);  // start after the reader's first access lands
    sim.mem_access(x, 8, true);
    *x = 5;
  });
  sim.run();
  EXPECT_TRUE(rec.aborted) << "strong atomicity: plain write must kill reader tx";
  EXPECT_FALSE(committed);
  EXPECT_EQ(rec.result.reason, htm::AbortReason::kConflict);
  EXPECT_EQ(*x, 5u);
}

TEST(SimHtm, ReadersDoNotConflictWithEachOther) {
  Simulation sim(small_config());
  auto* x = alloc_u64(sim, LineKind::kOther);
  int commits = 0;
  for (int core = 0; core < 4; ++core) {
    sim.spawn(core, [&, core](int) {
      sim.htm().tx_begin(core);
      sim.mem_access(x, 8, false);
      sim.charge(1000);
      sim.mem_access(x, 8, false);
      sim.htm().tx_commit(core);
      commits++;
    });
  }
  sim.run();
  EXPECT_EQ(commits, 4);
}

TEST(SimHtm, WriteWriteConflictAbortsVictim) {
  Simulation sim(small_config());
  auto* x = alloc_u64(sim, LineKind::kOther);
  AbortRecord rec;
  sim.spawn(0, [&](int core) {
    sim.htm().tx_begin(core);
    try {
      sim.mem_access(x, 8, true);
      *x = 1;
      sim.charge(10000);
      sim.mem_access(x, 8, true);
      *x = 2;
      sim.htm().tx_commit(core);
    } catch (const TxAbortException& e) {
      sim.htm().on_abort_handled(core);
      rec.aborted = true;
      rec.result = e.result;
    }
  });
  sim.spawn(1, [&](int core) {
    sim.charge(1000);  // start after the victim's write lands
    sim.htm().tx_begin(core);
    sim.mem_access(x, 8, true);
    *x = 7;
    sim.htm().tx_commit(core);
  });
  sim.run();
  EXPECT_TRUE(rec.aborted);
  // Victim's write of 1 was rolled back before the attacker's write of 7.
  EXPECT_EQ(*x, 7u);
}

TEST(SimHtm, RequesterWinsLeavesAttackerRunning) {
  Simulation sim(small_config());
  auto* x = alloc_u64(sim, LineKind::kOther);
  bool attacker_committed = false;
  bool victim_aborted = false;
  sim.spawn(0, [&](int core) {  // victim: reads then stalls
    sim.htm().tx_begin(core);
    try {
      sim.mem_access(x, 8, false);
      sim.charge(10000);
      sim.mem_access(x, 8, false);
      sim.htm().tx_commit(core);
    } catch (const TxAbortException&) {
      sim.htm().on_abort_handled(core);
      victim_aborted = true;
    }
  });
  sim.spawn(1, [&](int core) {  // attacker: transactional writer
    sim.charge(1000);
    sim.htm().tx_begin(core);
    sim.mem_access(x, 8, true);
    *x = 3;
    sim.htm().tx_commit(core);
    attacker_committed = true;
  });
  sim.run();
  EXPECT_TRUE(victim_aborted);
  EXPECT_TRUE(attacker_committed);
}

TEST(SimHtm, DoomedRaisedAtCommitToo) {
  Simulation sim(small_config());
  auto* x = alloc_u64(sim, LineKind::kOther);
  AbortRecord rec;
  sim.spawn(0, [&](int core) {
    sim.htm().tx_begin(core);
    try {
      sim.mem_access(x, 8, false);
      sim.charge(10000);  // doomed while suspended; no further accesses
      sim.htm().tx_commit(core);
    } catch (const TxAbortException& e) {
      sim.htm().on_abort_handled(core);
      rec.aborted = true;
      rec.result = e.result;
    }
  });
  sim.spawn(1, [&](int) {
    sim.charge(1000);
    sim.mem_access(x, 8, true);
    *x = 1;
  });
  sim.run();
  EXPECT_TRUE(rec.aborted) << "a doomed tx must not commit";
}

TEST(SimHtm, CapacityAbortOnWriteSetOverflow) {
  MachineConfig cfg = small_config();
  cfg.htm.write_capacity_lines = 4;
  Simulation sim(cfg);
  auto* big = static_cast<char*>(
      sim.arena().alloc(64 * 16, MemClass::kOther, LineKind::kOther));
  AbortRecord rec;
  sim.spawn(0, [&](int core) {
    sim.htm().tx_begin(core);
    try {
      for (int i = 0; i < 16; ++i) {
        sim.mem_access(big + 64 * i, 8, true);
        std::memset(big + 64 * i, 1, 8);
      }
      sim.htm().tx_commit(core);
    } catch (const TxAbortException& e) {
      sim.htm().on_abort_handled(core);
      rec.aborted = true;
      rec.result = e.result;
    }
  });
  sim.run();
  EXPECT_TRUE(rec.aborted);
  EXPECT_EQ(rec.result.reason, htm::AbortReason::kCapacity);
  // Writes performed before overflow were rolled back.
  EXPECT_EQ(big[0], 0);
}

TEST(SimHtm, ConflictClassifiedTrueWhenTargetsMatch) {
  Simulation sim(small_config());
  auto* x = alloc_u64(sim, LineKind::kRecord);
  AbortRecord rec;
  sim.spawn(0, [&](int core) {
    sim.htm().set_op_target(core, 42);
    sim.htm().tx_begin(core);
    try {
      sim.mem_access(x, 8, false);
      sim.charge(10000);
      sim.mem_access(x, 8, false);
      sim.htm().tx_commit(core);
    } catch (const TxAbortException& e) {
      sim.htm().on_abort_handled(core);
      rec.aborted = true;
      rec.result = e.result;
    }
  });
  sim.spawn(1, [&](int core) {
    sim.charge(1000);
    sim.htm().set_op_target(core, 42);  // same record
    sim.mem_access(x, 8, true);
    *x = 1;
  });
  sim.run();
  ASSERT_TRUE(rec.aborted);
  EXPECT_EQ(rec.result.conflict, htm::ConflictKind::kTrueSameRecord);
}

TEST(SimHtm, ConflictClassifiedFalseWhenTargetsDiffer) {
  Simulation sim(small_config());
  auto* x = alloc_u64(sim, LineKind::kRecord);
  AbortRecord rec;
  sim.spawn(0, [&](int core) {
    sim.htm().set_op_target(core, 42);
    sim.htm().tx_begin(core);
    try {
      sim.mem_access(x, 8, false);
      sim.charge(10000);
      sim.mem_access(x, 8, false);
      sim.htm().tx_commit(core);
    } catch (const TxAbortException& e) {
      sim.htm().on_abort_handled(core);
      rec.aborted = true;
      rec.result = e.result;
    }
  });
  sim.spawn(1, [&](int core) {
    sim.charge(1000);
    sim.htm().set_op_target(core, 43);  // adjacent record on the same line
    sim.mem_access(x, 8, true);
    *x = 1;
  });
  sim.run();
  ASSERT_TRUE(rec.aborted);
  EXPECT_EQ(rec.result.conflict, htm::ConflictKind::kFalseRecord);
}

TEST(SimHtm, ConflictClassifiedMetadata) {
  Simulation sim(small_config());
  auto* x = alloc_u64(sim, LineKind::kLeafMeta);
  AbortRecord rec;
  sim.spawn(0, [&](int core) {
    sim.htm().tx_begin(core);
    try {
      sim.mem_access(x, 8, false);
      sim.charge(10000);
      sim.mem_access(x, 8, false);
      sim.htm().tx_commit(core);
    } catch (const TxAbortException& e) {
      sim.htm().on_abort_handled(core);
      rec.aborted = true;
      rec.result = e.result;
    }
  });
  sim.spawn(1, [&](int) {
    sim.charge(1000);
    sim.mem_access(x, 8, true);
    *x = 1;
  });
  sim.run();
  ASSERT_TRUE(rec.aborted);
  EXPECT_EQ(rec.result.conflict, htm::ConflictKind::kFalseMetadata);
}

TEST(SimHtm, TxAllocsReleasedOnAbort) {
  Simulation sim(small_config());
  const auto in_use_before = sim.arena().bytes_in_use();
  sim.spawn(0, [&](int core) {
    sim.htm().tx_begin(core);
    try {
      void* p = sim.arena().alloc(64, MemClass::kOther, LineKind::kOther);
      sim.htm().note_tx_alloc(core, p, 64, MemClass::kOther);
      sim.htm().tx_abort_explicit(core, htm::xabort_code::kUser);
    } catch (const TxAbortException&) {
      sim.htm().on_abort_handled(core);
    }
  });
  sim.run();
  EXPECT_EQ(sim.arena().bytes_in_use(), in_use_before)
      << "allocations of an aborted tx must be released";
}

TEST(SimHtm, TxFreesDeferredToCommit) {
  Simulation sim(small_config());
  auto* p = alloc_u64(sim, LineKind::kOther);
  *p = 0xAB;
  sim.spawn(0, [&](int core) {
    sim.htm().tx_begin(core);
    try {
      EXPECT_TRUE(sim.htm().defer_tx_free(core, p, 8, MemClass::kOther));
      // Still readable until commit.
      sim.mem_access(p, 8, false);
      EXPECT_EQ(*p, 0xABu);
      sim.htm().tx_abort_explicit(core, htm::xabort_code::kUser);
    } catch (const TxAbortException&) {
      sim.htm().on_abort_handled(core);
    }
    // Abort dropped the deferred free: memory still live.
    EXPECT_EQ(*p, 0xABu);
    sim.htm().tx_begin(core);
    EXPECT_TRUE(sim.htm().defer_tx_free(core, p, 8, MemClass::kOther));
    sim.htm().tx_commit(core);
  });
  sim.run();
  // After commit, the slot is back on the free list: next alloc reuses it.
  auto* q = alloc_u64(sim, LineKind::kOther);
  EXPECT_EQ(q, p);
}

TEST(SimHtm, ActiveCountTracksTransactions) {
  Simulation sim(small_config());
  sim.spawn(0, [&](int core) {
    EXPECT_EQ(sim.htm().active_tx_count(), 0);
    sim.htm().tx_begin(core);
    EXPECT_EQ(sim.htm().active_tx_count(), 1);
    sim.htm().tx_commit(core);
    EXPECT_EQ(sim.htm().active_tx_count(), 0);
  });
  sim.run();
}

TEST(SimHtm, RepeatAccessesDoNotGrowTxSets) {
  // The per-line tx bitmasks dedup set tracking: hammering one line many
  // times must record exactly one read-set and one write-set line (the undo
  // log, by contrast, grows per write access — rollback needs every value).
  Simulation sim(small_config());
  auto* x = alloc_u64(sim, LineKind::kRecord);
  auto* y = alloc_u64(sim, LineKind::kRecord);
  sim.spawn(0, [&](int core) {
    sim.htm().tx_begin(core);
    for (int i = 0; i < 100; ++i) {
      sim.mem_access(x, 8, false);
      (void)*x;
    }
    EXPECT_EQ(sim.htm().tx_read_set_lines(core), 1u);
    for (int i = 0; i < 100; ++i) {
      sim.mem_access(y, 8, true);
      *y = static_cast<std::uint64_t>(i);
    }
    EXPECT_EQ(sim.htm().tx_write_set_lines(core), 1u);
    // A write to an already-read line upgrades without a duplicate entry.
    sim.mem_access(x, 8, true);
    *x = 5;
    EXPECT_EQ(sim.htm().tx_read_set_lines(core), 1u);
    EXPECT_EQ(sim.htm().tx_write_set_lines(core), 2u);
    sim.htm().tx_commit(core);
  });
  sim.run();
}

}  // namespace
}  // namespace euno::sim
