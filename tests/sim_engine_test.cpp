// Tests for the simulated-multicore engine: fiber scheduling order, clock
// accounting, determinism, arena allocation, and the coherence cost model.
#include <gtest/gtest.h>

#include <vector>

#include "sim/arena.hpp"
#include "sim/engine.hpp"
#include "sim/memmodel.hpp"

namespace euno::sim {
namespace {

MachineConfig small_config() {
  MachineConfig cfg;
  cfg.arena_bytes = 16ull << 20;
  return cfg;
}

TEST(Arena, AllocationsAreLineAlignedAndDisjoint) {
  SharedArena arena(1 << 20);
  void* a = arena.alloc(10, MemClass::kOther, LineKind::kOther);
  void* b = arena.alloc(10, MemClass::kOther, LineKind::kOther);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 64, 0u);
  EXPECT_NE(arena.line_index(a), arena.line_index(b));
}

TEST(Arena, FreeListReuse) {
  SharedArena arena(1 << 20);
  void* a = arena.alloc(64, MemClass::kOther, LineKind::kOther);
  arena.free(a, 64, MemClass::kOther);
  void* b = arena.alloc(64, MemClass::kOther, LineKind::kOther);
  EXPECT_EQ(a, b);
}

TEST(Arena, AllocZeroesMemory) {
  SharedArena arena(1 << 20);
  auto* p = static_cast<std::uint64_t*>(
      arena.alloc(64, MemClass::kOther, LineKind::kOther));
  p[0] = 0xdead;
  arena.free(p, 64, MemClass::kOther);
  auto* q = static_cast<std::uint64_t*>(
      arena.alloc(64, MemClass::kOther, LineKind::kOther));
  EXPECT_EQ(q[0], 0u);
}

TEST(Arena, TagsCoverAllLines) {
  SharedArena arena(1 << 20);
  void* p = arena.alloc(200, MemClass::kOther, LineKind::kRecord);
  for (std::size_t off = 0; off < 200; off += 64) {
    EXPECT_EQ(arena.line_of(static_cast<char*>(p) + off).kind, LineKind::kRecord);
  }
}

TEST(Arena, ContainsChecksBounds) {
  SharedArena arena(1 << 20);
  void* p = arena.alloc(64, MemClass::kOther, LineKind::kOther);
  EXPECT_TRUE(arena.contains(p));
  int local;
  EXPECT_FALSE(arena.contains(&local));
}

TEST(Engine, FibersRunToCompletion) {
  Simulation sim(small_config());
  std::vector<int> order;
  sim.spawn(0, [&](int core) { order.push_back(core); });
  sim.spawn(1, [&](int core) { order.push_back(core); });
  sim.run();
  EXPECT_EQ(order.size(), 2u);
}

TEST(Engine, MinClockFiberRunsFirst) {
  Simulation sim(small_config());
  std::vector<std::pair<int, std::uint64_t>> events;
  // Fiber 0 does expensive steps, fiber 1 cheap steps; the interleaving must
  // honour simulated time: fiber 1 gets many steps in while fiber 0 is
  // "busy".
  sim.spawn(0, [&](int) {
    for (int i = 0; i < 3; ++i) {
      sim.charge(1000);
      events.push_back({0, sim.clock_of(0)});
    }
  });
  sim.spawn(1, [&](int) {
    for (int i = 0; i < 3; ++i) {
      sim.charge(10);
      events.push_back({1, sim.clock_of(1)});
    }
  });
  sim.run();
  ASSERT_EQ(events.size(), 6u);
  // All of fiber 1's events (clocks 10,20,30) precede fiber 0's second event
  // (clock 2000).
  std::uint64_t fiber1_last_pos = 0, fiber0_second_pos = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events[i].first == 1) fiber1_last_pos = i;
    if (events[i].first == 0 && events[i].second == 2000) fiber0_second_pos = i;
  }
  EXPECT_LT(fiber1_last_pos, fiber0_second_pos);
}

TEST(Engine, DeterministicAcrossRuns) {
  auto run_once = [] {
    Simulation sim(small_config());
    auto* cell = static_cast<std::uint64_t*>(
        sim.arena().alloc(8, MemClass::kOther, LineKind::kOther));
    for (int core = 0; core < 4; ++core) {
      sim.spawn(core, [&sim, cell](int c) {
        for (int i = 0; i < 100; ++i) {
          sim.mem_access(cell, 8, true);
          *cell += static_cast<std::uint64_t>(c) + 1;
        }
      });
    }
    sim.run();
    return std::make_pair(*cell, sim.max_clock());
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

TEST(Engine, ChargeAccumulatesPerCore) {
  Simulation sim(small_config());
  sim.spawn(0, [&](int) { sim.charge(123); });
  sim.spawn(1, [&](int) { sim.charge(456); });
  sim.run();
  EXPECT_EQ(sim.clock_of(0), 123u);
  EXPECT_EQ(sim.clock_of(1), 456u);
  EXPECT_EQ(sim.max_clock(), 456u);
}

TEST(Engine, ComputeCountsInstructions) {
  Simulation sim(small_config());
  sim.spawn(0, [&](int) { sim.compute(50); });
  sim.run();
  EXPECT_EQ(sim.counters(0).instructions, 50u);
  EXPECT_EQ(sim.clock_of(0), 50u);
}

TEST(Engine, MemAccessOutsideFiberIsFree) {
  Simulation sim(small_config());
  auto* cell = static_cast<std::uint64_t*>(
      sim.arena().alloc(8, MemClass::kOther, LineKind::kOther));
  sim.mem_access(cell, 8, true);  // must not crash or charge anything
  *cell = 5;
  EXPECT_EQ(sim.max_clock(), 0u);
}

TEST(CostModel, FirstTouchIsDram) {
  MachineConfig cfg;
  LineState line;
  EXPECT_EQ(coherence_access(line, 0, false, cfg), cfg.latency.dram);
}

TEST(CostModel, RepeatAccessIsL1) {
  MachineConfig cfg;
  LineState line;
  coherence_access(line, 0, true, cfg);
  EXPECT_EQ(coherence_access(line, 0, true, cfg), cfg.latency.l1_hit);
  EXPECT_EQ(coherence_access(line, 0, false, cfg), cfg.latency.l1_hit);
}

TEST(CostModel, CrossCoreSameSocketTransfer) {
  MachineConfig cfg;
  LineState line;
  coherence_access(line, 0, true, cfg);  // core 0 dirties
  EXPECT_EQ(coherence_access(line, 1, false, cfg), cfg.latency.local_cache);
}

TEST(CostModel, CrossSocketTransferCostsMore) {
  MachineConfig cfg;
  LineState line;
  coherence_access(line, 0, true, cfg);  // core 0 (socket 0) dirties
  // Core 10 is on socket 1 in the paper testbed topology.
  EXPECT_EQ(coherence_access(line, 10, false, cfg), cfg.latency.remote_cache);
}

TEST(CostModel, WriteInvalidatesSharers) {
  MachineConfig cfg;
  LineState line;
  coherence_access(line, 0, true, cfg);
  coherence_access(line, 1, false, cfg);  // now shared by 0 and 1
  EXPECT_NE(line.sharers & 0b11u, 0u);
  coherence_access(line, 2, true, cfg);  // write invalidates others
  EXPECT_EQ(line.sharers, 0b100u);
  EXPECT_EQ(line.owner, 2);
  EXPECT_TRUE(line.dirty);
}

TEST(CostModel, ReadDowngradesDirtyLine) {
  MachineConfig cfg;
  LineState line;
  coherence_access(line, 0, true, cfg);
  EXPECT_TRUE(line.dirty);
  coherence_access(line, 1, false, cfg);
  EXPECT_FALSE(line.dirty);
}

}  // namespace
}  // namespace euno::sim
