// RetryPolicy and TxStats unit tests: budget selection for every abort
// reason, construction-time validation of policy and tree configs, preset
// invariants, and the aggregation arithmetic the experiment driver relies on.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/euno_config.hpp"
#include "core/euno_tree.hpp"
#include "ctx/sim_ctx.hpp"
#include "htm/policy.hpp"
#include "sim/engine.hpp"
#include "trees/htmbtree/htm_bptree.hpp"
#include "trees/olc/olc_bptree.hpp"

namespace euno::tests {
namespace {

using htm::AbortReason;
using htm::ConflictKind;
using htm::RetryPolicy;
using htm::TxResult;
using htm::TxStats;

// ---- budget_for ----

TEST(RetryPolicy, BudgetForEveryReason) {
  RetryPolicy p;
  p.conflict_retries = 7;
  p.capacity_retries = 3;
  p.other_retries = 5;
  EXPECT_EQ(p.budget_for(AbortReason::kConflict), 7);
  EXPECT_EQ(p.budget_for(AbortReason::kCapacity), 3);
  // Everything else draws the "other" budget, including the reasons that
  // never normally reach the budget logic (kNone, kLockBusy).
  EXPECT_EQ(p.budget_for(AbortReason::kExplicit), 5);
  EXPECT_EQ(p.budget_for(AbortReason::kNested), 5);
  EXPECT_EQ(p.budget_for(AbortReason::kOther), 5);
  EXPECT_EQ(p.budget_for(AbortReason::kLockBusy), 5);
  EXPECT_EQ(p.budget_for(AbortReason::kNone), 5);
}

TEST(RetryPolicy, DefaultEqualsNaiveAndIsNotHardened) {
  const RetryPolicy d;
  const RetryPolicy n = RetryPolicy::naive();
  EXPECT_EQ(d.conflict_retries, n.conflict_retries);
  EXPECT_EQ(d.capacity_retries, n.capacity_retries);
  EXPECT_EQ(d.other_retries, n.other_retries);
  EXPECT_FALSE(d.is_hardened());
  EXPECT_FALSE(n.is_hardened());
}

TEST(RetryPolicy, HardenedPresetIsValidAndHardened) {
  const RetryPolicy h = RetryPolicy::hardened();
  EXPECT_TRUE(h.is_hardened());
  EXPECT_TRUE(h.backoff);
  EXPECT_TRUE(h.anti_lemming);
  EXPECT_GT(h.starvation_threshold, 0u);
  // The semantics-changing mechanisms stay opt-in.
  EXPECT_EQ(h.health_window, 0u);
  EXPECT_EQ(h.lock_wait_timeout_limit, 0u);
  EXPECT_NO_THROW(h.validate());
}

// ---- validate ----

TEST(RetryPolicy, ValidateRejectsNegativeBudgets) {
  RetryPolicy p;
  p.conflict_retries = -1;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = RetryPolicy{};
  p.capacity_retries = -2;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = RetryPolicy{};
  p.other_retries = -3;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(RetryPolicy, ValidateRejectsDegenerateBackoff) {
  RetryPolicy p;
  p.backoff = true;
  p.backoff_base = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = RetryPolicy{};
  p.backoff = true;
  p.backoff_base = 128;
  p.backoff_cap = 64;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  // A zero base is fine while backoff is off (the knob is inert).
  p = RetryPolicy{};
  p.backoff_base = 0;
  EXPECT_NO_THROW(p.validate());
}

TEST(RetryPolicy, ValidateRejectsZeroSpinCapAndBadHealthPct) {
  RetryPolicy p;
  p.lock_wait_spin_cap = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = RetryPolicy{};
  p.health_window = 100;
  p.health_min_commit_pct = 101;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  // Out-of-range pct is inert while the monitor is off.
  p = RetryPolicy{};
  p.health_min_commit_pct = 101;
  EXPECT_NO_THROW(p.validate());
}

TEST(EunoConfigValidate, RejectsBadTuning) {
  core::EunoConfig cfg;
  cfg.adapt_window = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = core::EunoConfig{};
  cfg.sched_retries = -1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = core::EunoConfig{};
  cfg.near_full_pct = 101;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = core::EunoConfig{};
  cfg.adapt_high_pct = 200;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = core::EunoConfig{};
  cfg.policy.conflict_retries = -5;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  EXPECT_NO_THROW(core::EunoConfig::full().validate());
}

TEST(EunoConfigValidate, TreeConstructorsRejectBadConfigs) {
  sim::MachineConfig mc;
  mc.arena_bytes = 64ull << 20;
  sim::Simulation simulation(mc);
  ctx::SimCtx c(simulation, 0);

  core::EunoConfig bad = core::EunoConfig::full();
  bad.adapt_window = 0;
  EXPECT_THROW((core::EunoBPTree<ctx::SimCtx>(c, bad)), std::invalid_argument);

  trees::HtmBPTree<ctx::SimCtx>::Options hopt;
  hopt.policy.other_retries = -1;
  EXPECT_THROW((trees::HtmBPTree<ctx::SimCtx>(c, hopt)), std::invalid_argument);

  trees::OlcBPTree<ctx::SimCtx>::Options oopt;
  oopt.policy.lock_wait_spin_cap = 0;
  EXPECT_THROW((trees::OlcBPTree<ctx::SimCtx>(c, oopt)), std::invalid_argument);
}

// ---- TxStats ----

TEST(TxStats, NoteAbortClassifiesEveryReason) {
  TxStats st;
  TxResult r;
  r.reason = AbortReason::kConflict;
  r.conflict = ConflictKind::kTrueSameRecord;
  st.note_abort(r);
  r.conflict = ConflictKind::kFalseMetadata;
  st.note_abort(r);
  r = TxResult{};
  r.reason = AbortReason::kExplicit;
  r.xabort_payload = htm::xabort_code::kFaultInjected;
  st.note_abort(r);
  r = TxResult{};
  r.reason = AbortReason::kOther;  // "unknown" bucket: interrupts, faults
  st.note_abort(r);
  r = TxResult{};
  r.reason = AbortReason::kLockBusy;
  st.note_abort(r);

  EXPECT_EQ(st.aborts[static_cast<int>(AbortReason::kConflict)], 2u);
  EXPECT_EQ(st.aborts[static_cast<int>(AbortReason::kExplicit)], 1u);
  EXPECT_EQ(st.aborts[static_cast<int>(AbortReason::kOther)], 1u);
  EXPECT_EQ(st.aborts[static_cast<int>(AbortReason::kLockBusy)], 1u);
  // Conflict-kind attribution only applies to conflict aborts.
  EXPECT_EQ(st.conflicts[static_cast<int>(ConflictKind::kTrueSameRecord)], 1u);
  EXPECT_EQ(st.conflicts[static_cast<int>(ConflictKind::kFalseMetadata)], 1u);
  EXPECT_EQ(st.conflicts[static_cast<int>(ConflictKind::kUnknown)], 0u);
  EXPECT_EQ(st.total_aborts(), 5u);
}

TEST(TxStats, TotalAbortsExcludesTheCommittedSlot) {
  TxStats st;
  st.aborts[static_cast<int>(AbortReason::kNone)] = 99;  // never counted
  st.aborts[static_cast<int>(AbortReason::kConflict)] = 2;
  EXPECT_EQ(st.total_aborts(), 2u);
}

TEST(TxStats, AggregationSumsEveryField) {
  TxStats a;
  a.attempts = 10;
  a.commits = 7;
  a.fallbacks = 2;
  a.aborts[static_cast<int>(AbortReason::kConflict)] = 3;
  a.conflicts[static_cast<int>(ConflictKind::kFalseRecord)] = 3;
  a.lock_wait_cycles = 100;
  a.lock_wait_timeouts = 1;
  a.backoff_cycles = 50;
  a.starvation_escapes = 2;
  a.degradations = 1;
  a.unsubscribed_attempts = 4;

  TxStats b = a;
  b += a;
  EXPECT_EQ(b.attempts, 20u);
  EXPECT_EQ(b.commits, 14u);
  EXPECT_EQ(b.fallbacks, 4u);
  EXPECT_EQ(b.aborts[static_cast<int>(AbortReason::kConflict)], 6u);
  EXPECT_EQ(b.conflicts[static_cast<int>(ConflictKind::kFalseRecord)], 6u);
  EXPECT_EQ(b.lock_wait_cycles, 200u);
  EXPECT_EQ(b.lock_wait_timeouts, 2u);
  EXPECT_EQ(b.backoff_cycles, 100u);
  EXPECT_EQ(b.starvation_escapes, 4u);
  EXPECT_EQ(b.degradations, 2u);
  EXPECT_EQ(b.unsubscribed_attempts, 8u);
  EXPECT_EQ(b.total_aborts(), 6u);
}

}  // namespace
}  // namespace euno::tests
