// Perf-counter hook tests. The degradation contract — perf_event_open denied
// or absent, counters report unavailable with the errno name, run continues —
// is exercised through the OpenFn test seam, so it runs on any host without
// needing a permissive perf_event_paranoid.
#include <gtest/gtest.h>

#include <cerrno>
#include <string>

#include "obs/perfctr.hpp"

namespace euno {
namespace {

using obs::PerfCounter;
using obs::PerfCounterGroup;
using obs::PerfPhase;
using obs::PerfSample;

constexpr const char* kCounterNames[] = {"cycles", "instructions",
                                         "llc_misses", "rtm_starts",
                                         "rtm_aborts"};

#if defined(__linux__)

long deny_eperm(void*, std::int32_t, std::int32_t, std::int32_t,
                unsigned long) {
  errno = EPERM;
  return -1;
}

long deny_enoent(void*, std::int32_t, std::int32_t, std::int32_t,
                 unsigned long) {
  errno = ENOENT;
  return -1;
}

TEST(PerfCounterGroup, DegradesToUnavailableOnEperm) {
  PerfCounterGroup g(&deny_eperm);
  EXPECT_FALSE(g.any_available());
  g.start();  // lifecycle calls must be safe with zero open fds
  g.stop();
  const PerfPhase p = g.sample("measure");
  EXPECT_EQ(p.phase, "measure");
  ASSERT_EQ(p.counters.size(), std::size(kCounterNames));
  for (std::size_t i = 0; i < p.counters.size(); ++i) {
    EXPECT_EQ(p.counters[i].name, kCounterNames[i]);
    EXPECT_FALSE(p.counters[i].available);
    EXPECT_EQ(p.counters[i].error, "EPERM");
    EXPECT_EQ(p.counters[i].value, 0u);
  }
}

TEST(PerfCounterGroup, DegradesToUnavailableOnEnoent) {
  PerfCounterGroup g(&deny_enoent);
  EXPECT_FALSE(g.any_available());
  const PerfPhase p = g.sample("preload");
  ASSERT_EQ(p.counters.size(), std::size(kCounterNames));
  for (const PerfCounter& c : p.counters) {
    EXPECT_FALSE(c.available);
    EXPECT_EQ(c.error, "ENOENT");
  }
}

#endif  // __linux__

// The real-syscall constructor must work on every host — counting when the
// kernel allows it, degrading cleanly when it does not. Either way the
// sample has the full counter set and each entry is value-xor-error.
TEST(PerfCounterGroup, RealOpenNeverCrashes) {
  PerfCounterGroup g;
  g.start();
  volatile std::uint64_t sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + static_cast<std::uint64_t>(i);
  g.stop();
  const PerfPhase p = g.sample("measure");
  ASSERT_EQ(p.counters.size(), std::size(kCounterNames));
  for (std::size_t i = 0; i < p.counters.size(); ++i) {
    const PerfCounter& c = p.counters[i];
    EXPECT_EQ(c.name, kCounterNames[i]);
    if (c.available) {
      EXPECT_TRUE(c.error.empty());
    } else {
      EXPECT_FALSE(c.error.empty()) << c.name;
    }
  }
  if (g.any_available()) {
    const PerfCounter* cycles = nullptr;
    PerfSample s;
    s.phases.push_back(p);
    cycles = s.find("measure", "cycles");
    ASSERT_NE(cycles, nullptr);
    if (cycles->available) {
      EXPECT_GT(cycles->value, 0u) << "enabled cycle counter read zero over "
                                      "a 100k-iteration busy loop";
    }
  }
}

TEST(PerfSample, FindLocatesByPhaseAndName) {
  PerfSample s;
  s.attempted = true;
  PerfPhase a;
  a.phase = "preload";
  a.counters.push_back({"cycles", true, 123, ""});
  PerfPhase b;
  b.phase = "measure";
  b.counters.push_back({"cycles", true, 456, ""});
  s.phases.push_back(a);
  s.phases.push_back(b);
  ASSERT_NE(s.find("measure", "cycles"), nullptr);
  EXPECT_EQ(s.find("measure", "cycles")->value, 456u);
  EXPECT_EQ(s.find("preload", "cycles")->value, 123u);
  EXPECT_EQ(s.find("measure", "nonesuch"), nullptr);
  EXPECT_EQ(s.find("nonesuch", "cycles"), nullptr);
}

}  // namespace
}  // namespace euno
