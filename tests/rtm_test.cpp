// Tests for the native RTM backend. Hardware-dependent cases skip when the
// CPU cannot commit transactions (TSX disabled), and the lock-fallback path
// is tested unconditionally.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "ctx/common.hpp"
#include "ctx/native_ctx.hpp"
#include "htm/abort.hpp"
#include "htm/policy.hpp"
#include "htm/rtm.hpp"

namespace euno {
namespace {

using ctx::FallbackLock;
using ctx::NativeCtx;
using ctx::NativeEnv;
using ctx::TxSite;

TEST(Rtm, ProbeIsStable) {
  const bool a = htm::rtm_supported();
  const bool b = htm::rtm_supported();
  EXPECT_EQ(a, b);
}

// The status-bit decode is pure arithmetic over the architectural RTM bit
// layout (htm::rtm_status mirrors the _XABORT_* intrinsics, static_asserted
// in rtm.cpp), so it is testable on every build — RTM hardware or not.
TEST(Rtm, DecodeStatusBits) {
  namespace rs = htm::rtm_status;
  EXPECT_EQ(htm::rtm_decode(rs::kStarted).reason, htm::AbortReason::kNone);
  // Explicit abort with the fallback-lock sentinel code: the transaction saw
  // the lock held at subscription time -> kLockBusy, attributed to the
  // lock-subscription conflict class (same bucket the simulator uses).
  const unsigned explicit_locked =
      rs::with_code(rs::kExplicit, htm::xabort_code::kFallbackLocked);
  auto locked = htm::rtm_decode(explicit_locked);
  EXPECT_EQ(locked.reason, htm::AbortReason::kLockBusy);
  EXPECT_EQ(locked.conflict, htm::ConflictKind::kLockSubscription);
  const unsigned explicit_user =
      rs::with_code(rs::kExplicit, htm::xabort_code::kUser);
  auto r = htm::rtm_decode(explicit_user);
  EXPECT_EQ(r.reason, htm::AbortReason::kExplicit);
  EXPECT_EQ(r.xabort_payload, htm::xabort_code::kUser);
  EXPECT_EQ(htm::rtm_decode(rs::kConflict).reason, htm::AbortReason::kConflict);
  // Retry-hinted conflicts still decode as conflicts.
  EXPECT_EQ(htm::rtm_decode(rs::kConflict | rs::kRetry).reason,
            htm::AbortReason::kConflict);
  EXPECT_EQ(htm::rtm_decode(rs::kCapacity).reason, htm::AbortReason::kCapacity);
  EXPECT_EQ(htm::rtm_decode(rs::kNested).reason, htm::AbortReason::kNested);
  // Status 0: aborted with no cause bits (spurious / debug-trap style).
  EXPECT_EQ(htm::rtm_decode(0).reason, htm::AbortReason::kOther);
  EXPECT_EQ(htm::rtm_decode(rs::kDebug).reason, htm::AbortReason::kOther);
}

TEST(Rtm, BasicTransactionCommits) {
  if (!htm::rtm_supported()) GTEST_SKIP() << "no usable TSX";
#if defined(EUNO_HAVE_RTM)
  int x = 0;
  bool committed = false;
  for (int attempt = 0; attempt < 100 && !committed; ++attempt) {
    const unsigned s = htm::rtm_begin();
    if (s == _XBEGIN_STARTED) {
      x = 42;
      htm::rtm_end();
      committed = true;
    }
  }
  ASSERT_TRUE(committed);
  EXPECT_EQ(x, 42);
#endif
}

TEST(Rtm, ExplicitAbortRollsBack) {
  if (!htm::rtm_supported()) GTEST_SKIP() << "no usable TSX";
#if defined(EUNO_HAVE_RTM)
  volatile int x = 0;
  bool aborted_explicitly = false;
  for (int attempt = 0; attempt < 100 && !aborted_explicitly; ++attempt) {
    const unsigned s = htm::rtm_begin();
    if (s == _XBEGIN_STARTED) {
      x = 99;
      htm::rtm_abort_user();
    }
    const auto r = htm::rtm_decode(s);
    if (r.reason == htm::AbortReason::kExplicit &&
        r.xabort_payload == htm::xabort_code::kUser) {
      aborted_explicitly = true;
    }
  }
  ASSERT_TRUE(aborted_explicitly);
  EXPECT_EQ(x, 0) << "explicit abort must discard transactional writes";
#endif
}

TEST(NativeTxn, BodyRunsExactlyOnceObservably) {
  NativeEnv env;
  NativeCtx c(env, 0);
  FallbackLock lock;
  htm::RetryPolicy policy;
  int value = 0;
  c.txn(TxSite::kMono, lock, policy, [&] { value = 7; });
  EXPECT_EQ(value, 7);
  const auto& st = c.stats().at(TxSite::kMono);
  EXPECT_EQ(st.commits, 1u);
}

TEST(NativeTxn, FallsBackWhenRtmUnavailableOrContended) {
  NativeEnv env;
  FallbackLock lock;
  htm::RetryPolicy policy;
  // Pre-hold the lock from another thread briefly: transactions must wait,
  // then proceed (either transactionally after release or via fallback).
  lock.word.store(1);
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    lock.word.store(0);
  });
  NativeCtx c(env, 1);
  int value = 0;
  c.txn(TxSite::kMono, lock, policy, [&] { value = 1; });
  releaser.join();
  EXPECT_EQ(value, 1);
  EXPECT_EQ(lock.word.load(), 0u);
}

TEST(NativeTxn, CountersAtomicUnderConcurrency) {
  NativeEnv env;
  FallbackLock lock;
  htm::RetryPolicy policy;
  std::uint64_t counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIters = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      NativeCtx c(env, t);
      for (int i = 0; i < kIters; ++i) {
        c.txn(TxSite::kMono, lock, policy,
              [&] { c.write(counter, c.read(counter) + 1); });
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(NativeCtx, ReadWriteRoundTrip) {
  NativeEnv env;
  NativeCtx c(env, 0);
  std::uint64_t cell = 5;
  EXPECT_EQ(c.read(cell), 5u);
  c.write<std::uint64_t>(cell, 9);
  EXPECT_EQ(cell, 9u);
}

TEST(NativeCtx, AtomicsWork) {
  NativeEnv env;
  NativeCtx c(env, 0);
  std::atomic<std::uint8_t> byte{0};
  EXPECT_TRUE(c.cas<std::uint8_t>(byte, 0, 1));
  EXPECT_FALSE(c.cas<std::uint8_t>(byte, 0, 2));
  EXPECT_EQ(c.fetch_or<std::uint8_t>(byte, 0x10), 0x01);
  EXPECT_EQ(c.atomic_load(byte), 0x11);
  c.atomic_store<std::uint8_t>(byte, 0);
  EXPECT_EQ(byte.load(), 0);
}

TEST(NativeCtx, AllocFreeAccounted) {
  auto& ms = MemStats::instance();
  ms.reset();
  NativeEnv env;
  NativeCtx c(env, 0);
  void* p = c.alloc(100, MemClass::kLeafNode, sim::LineKind::kRecord);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % kCacheLineSize, 0u);
  EXPECT_EQ(ms.snapshot(MemClass::kLeafNode).live_bytes, 128u);
  c.free(p, 100, MemClass::kLeafNode);
  EXPECT_EQ(ms.snapshot(MemClass::kLeafNode).live_bytes, 0u);
  ms.reset();
}

}  // namespace
}  // namespace euno
