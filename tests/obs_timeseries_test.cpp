// Windowed time-series tests: rotation edge cases (empty windows, ops
// straddling a window boundary, the final partial window, cross-thread TSC
// skew) and the merge into the run-level TimeSeries.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "obs/timeseries.hpp"

namespace euno {
namespace {

using obs::ThreadObs;
using obs::TimeSeries;
using obs::WindowedSeries;

TEST(WindowedSeries, DisabledSeriesCollectsNothing) {
  WindowedSeries s;  // never configured
  EXPECT_FALSE(s.enabled());
  s.record_op(100, 10);
  s.note_abort(150);
  s.finish(1000);
  EXPECT_TRUE(s.closed().empty());
  EXPECT_EQ(s.end_index(), 0u);

  s.configure(0, 0);  // interval 0 = explicitly off
  EXPECT_FALSE(s.enabled());
}

TEST(WindowedSeries, SingleWindowAccumulates) {
  WindowedSeries s;
  s.configure(1000, 0);
  ASSERT_TRUE(s.enabled());
  s.record_op(100, 40);
  s.record_op(200, 10);
  s.note_abort(250);
  s.note_fallback(300);
  EXPECT_TRUE(s.closed().empty()) << "current window closes only on rotation";
  s.finish(900);
  ASSERT_EQ(s.closed().size(), 1u);
  const auto& w = s.closed()[0];
  EXPECT_EQ(w.index, 0u);
  EXPECT_EQ(w.ops, 2u);
  EXPECT_EQ(w.aborts, 1u);
  EXPECT_EQ(w.fallbacks, 1u);
  EXPECT_EQ(w.lat_sum, 50u);
  EXPECT_EQ(w.lat_max, 40u);
  EXPECT_FALSE(w.buckets.empty());
}

TEST(WindowedSeries, OpStraddlingBoundaryLandsInCompletionWindow) {
  WindowedSeries s;
  s.configure(100, 0);
  // Started in window 0, finished at ts=105 (window 1): counted in window 1.
  s.record_op(105, 50);
  // A timestamp exactly on the boundary belongs to the window it opens.
  s.record_op(200, 10);  // window 2
  s.finish(250);
  ASSERT_EQ(s.closed().size(), 2u);
  EXPECT_EQ(s.closed()[0].index, 1u);
  EXPECT_EQ(s.closed()[0].ops, 1u);
  EXPECT_EQ(s.closed()[1].index, 2u);
  EXPECT_EQ(s.closed()[1].ops, 1u);
}

TEST(WindowedSeries, EmptyWindowsAreOmittedPerThread) {
  WindowedSeries s;
  s.configure(10, 0);
  s.record_op(5, 1);    // window 0
  s.record_op(95, 1);   // window 9; windows 1..8 stay empty
  s.finish(99);
  ASSERT_EQ(s.closed().size(), 2u);
  EXPECT_EQ(s.closed()[0].index, 0u);
  EXPECT_EQ(s.closed()[1].index, 9u);
  EXPECT_EQ(s.end_index(), 9u);
}

TEST(WindowedSeries, FinishClosesPartialWindowAndExtendsSpan) {
  WindowedSeries s;
  s.configure(100, 0);
  s.record_op(120, 5);  // window 1, still open
  // The run ran until ts=460 (window 4) even though this thread went idle.
  s.finish(460);
  ASSERT_EQ(s.closed().size(), 1u);
  EXPECT_EQ(s.closed()[0].index, 1u);
  EXPECT_EQ(s.end_index(), 4u);
}

TEST(WindowedSeries, EarlyTimestampFoldsIntoCurrentWindow) {
  WindowedSeries s;
  s.configure(100, 0);
  s.record_op(250, 5);  // rotates to window 2
  // Bounded clock skew: a timestamp from a closed window must not reopen
  // it — it folds into the current window.
  s.record_op(110, 7);
  s.note_abort(50);
  s.finish(299);
  ASSERT_EQ(s.closed().size(), 1u);
  EXPECT_EQ(s.closed()[0].index, 2u);
  EXPECT_EQ(s.closed()[0].ops, 2u);
  EXPECT_EQ(s.closed()[0].aborts, 1u);
}

TEST(WindowedSeries, TimestampsBeforeOriginLandInWindowZero) {
  WindowedSeries s;
  s.configure(100, 5000);
  s.record_op(4990, 3);  // before the origin: window 0, not an underflow
  s.finish(5010);
  ASSERT_EQ(s.closed().size(), 1u);
  EXPECT_EQ(s.closed()[0].index, 0u);
}

TEST(MergeSeries, MaterializesGapsAndMergesThreads) {
  std::vector<ThreadObs> threads(2);
  threads[0].series.configure(100, 0);
  threads[1].series.configure(100, 0);
  threads[0].series.record_op(50, 10);   // window 0
  threads[0].series.record_op(260, 30);  // window 2
  threads[1].series.record_op(70, 20);   // window 0
  threads[1].series.note_fallback(150);  // window 1
  threads[0].series.finish(399);         // span reaches window 3
  threads[1].series.finish(250);
  const TimeSeries ts = obs::merge_series(100, "ns", threads);
  ASSERT_TRUE(ts.enabled());
  EXPECT_EQ(ts.interval, 100u);
  EXPECT_EQ(ts.unit, "ns");
  // Contiguous 0..3 — window 3 is empty but materialized (uniform x-axis).
  ASSERT_EQ(ts.windows.size(), 4u);
  for (std::size_t i = 0; i < ts.windows.size(); ++i) {
    EXPECT_EQ(ts.windows[i].index, i);
  }
  EXPECT_EQ(ts.windows[0].ops, 2u);
  EXPECT_EQ(ts.windows[0].lat_sum, 30u);
  EXPECT_EQ(ts.windows[0].lat_max, 20u);
  EXPECT_EQ(ts.windows[1].ops, 0u);
  EXPECT_EQ(ts.windows[1].fallbacks, 1u);
  EXPECT_EQ(ts.windows[2].ops, 1u);
  EXPECT_EQ(ts.windows[3].ops, 0u);
  std::uint64_t total = 0;
  for (const auto& w : ts.windows) total += w.ops;
  EXPECT_EQ(total, 3u);
}

TEST(MergeSeries, PercentilesComeFromMergedBuckets) {
  std::vector<ThreadObs> threads(2);
  threads[0].series.configure(1000, 0);
  threads[1].series.configure(1000, 0);
  // Nine fast ops and one slow one: p50 must sit in the fast bucket, p99 in
  // the slow one, p50 <= p99 <= lat_max.
  for (int i = 0; i < 5; ++i) threads[0].series.record_op(10, 8);
  for (int i = 0; i < 4; ++i) threads[1].series.record_op(10, 8);
  threads[1].series.record_op(20, 10000);
  threads[0].series.finish(999);
  threads[1].series.finish(999);
  const TimeSeries ts = obs::merge_series(1000, "cycles", threads);
  ASSERT_EQ(ts.windows.size(), 1u);
  const auto& w = ts.windows[0];
  EXPECT_EQ(w.ops, 10u);
  EXPECT_EQ(w.lat_max, 10000u);
  EXPECT_LE(w.lat_p50, 8u);
  EXPECT_GT(w.lat_p99, 8u);
  EXPECT_LE(w.lat_p50, w.lat_p99);
  EXPECT_LE(w.lat_p99, w.lat_max);
}

TEST(MergeSeries, NoEnabledThreadYieldsDisabledSeries) {
  std::vector<ThreadObs> threads(3);  // none configured
  const TimeSeries ts = obs::merge_series(100, "ns", threads);
  EXPECT_FALSE(ts.enabled());
  EXPECT_TRUE(ts.windows.empty());
}

}  // namespace
}  // namespace euno
