// Tests for Euno-B+Tree: full conformance battery, per-feature behaviour
// (segments, reserved keys, CCM, adaptive control), splits, deletion with
// mark maintenance, deferred rebalance, and every ablation configuration.
#include <gtest/gtest.h>

#include "core/euno_tree.hpp"
#include "tree_conformance.hpp"

namespace euno::tests {
namespace {

using core::EunoBPTree;
using core::EunoConfig;

EunoConfig stress_config() {
  EunoConfig cfg = EunoConfig::full();  // everything on, incl. adaptive
  return cfg;
}

struct NativeAdapter {
  static EunoBPTree<ctx::NativeCtx> make(ctx::NativeCtx& c) {
    return EunoBPTree<ctx::NativeCtx>(c, stress_config());
  }
};
struct SimAdapter {
  static EunoBPTree<ctx::SimCtx> make(ctx::SimCtx& c) {
    return EunoBPTree<ctx::SimCtx>(c, stress_config());
  }
};

EUNO_TREE_CONFORMANCE_SUITE(EunoTree, NativeAdapter, SimAdapter)

// ---- ablation configurations all behave correctly ----

template <int S>
void run_config_oracle(EunoConfig cfg) {
  ctx::NativeEnv env;
  ctx::NativeCtx c(env, 0);
  EunoBPTree<ctx::NativeCtx, 16, S> tree(c, cfg);
  run_oracle_workload(tree, c, 7000 + S, 12000, 3000);
  tree.check_invariants();
  tree.destroy(c);
}

TEST(EunoAblation, SplitOnlyConsecutiveLayout) {
  run_config_oracle<1>(EunoConfig::split_only());
}
TEST(EunoAblation, PartitionedLeaves) {
  run_config_oracle<4>(EunoConfig::split_only());
}
TEST(EunoAblation, WithLockbits) { run_config_oracle<4>(EunoConfig::with_lockbits()); }
TEST(EunoAblation, WithMarkbits) { run_config_oracle<4>(EunoConfig::with_markbits()); }
TEST(EunoAblation, FullAdaptive) { run_config_oracle<4>(EunoConfig::full()); }
TEST(EunoAblation, TwoSegments) { run_config_oracle<2>(EunoConfig::full()); }
TEST(EunoAblation, EightSegments) { run_config_oracle<8>(EunoConfig::full()); }

template <int S>
void run_config_sim_stress(EunoConfig cfg) {
  sim::Simulation simulation(test_sim_config());
  ctx::SimCtx setup(simulation, 0);
  EunoBPTree<ctx::SimCtx, 16, S> tree(setup, cfg);
  for (int t = 0; t < 8; ++t) {
    simulation.spawn(t, [&, t](int core) {
      ctx::SimCtx c(simulation, core);
      Xoshiro256 rng(5000 + static_cast<std::uint64_t>(t));
      for (int i = 0; i < 400; ++i) {
        const Key key = rng.next_bounded(128);
        switch (rng.next_bounded(4)) {
          case 0: {
            Value v;
            (void)tree.get(c, key, &v);
            break;
          }
          case 3:
            (void)tree.erase(c, key);
            break;
          default:
            tree.put(c, key, key * 3 + 1);
        }
      }
    });
  }
  simulation.run();
  tree.check_invariants();
  // Every present key must carry the one deterministic value ever written.
  ctx::SimCtx verify(simulation, 0);
  for (Key k = 0; k < 128; ++k) {
    Value v = 0;
    if (tree.get(verify, k, &v)) EXPECT_EQ(v, k * 3 + 1);
  }
  tree.destroy(verify);
}

TEST(EunoAblation, SimStressSplitOnly) {
  run_config_sim_stress<1>(EunoConfig::split_only());
}
TEST(EunoAblation, SimStressLockbits) {
  run_config_sim_stress<4>(EunoConfig::with_lockbits());
}
TEST(EunoAblation, SimStressMarkbits) {
  run_config_sim_stress<4>(EunoConfig::with_markbits());
}
TEST(EunoAblation, SimStressFull) { run_config_sim_stress<4>(EunoConfig::full()); }

// ---- feature-specific behaviour ----

TEST(EunoTree, MarkBitShortcutsAbsentKeys) {
  ctx::NativeEnv env;
  ctx::NativeCtx c(env, 0);
  EunoBPTree<ctx::NativeCtx> tree(c, EunoConfig::with_markbits());
  for (Key k = 0; k < 100; k += 2) tree.put(c, k, k);
  // Gets for absent keys must still be correct (possibly via the shortcut).
  for (Key k = 1; k < 100; k += 2) {
    Value v;
    EXPECT_FALSE(tree.get(c, k, &v)) << k;
  }
  for (Key k = 0; k < 100; k += 2) {
    Value v = 0;
    EXPECT_TRUE(tree.get(c, k, &v));
    EXPECT_EQ(v, k);
  }
  tree.destroy(c);
}

TEST(EunoTree, EraseClearsMarksWithoutFalseNegatives) {
  ctx::NativeEnv env;
  ctx::NativeCtx c(env, 0);
  EunoBPTree<ctx::NativeCtx> tree(c, EunoConfig::with_markbits());
  for (Key k = 0; k < 64; ++k) tree.put(c, k, k);
  for (Key k = 0; k < 64; k += 2) EXPECT_TRUE(tree.erase(c, k));
  tree.check_invariants();  // includes: every live key has its mark set
  for (Key k = 0; k < 64; ++k) {
    Value v;
    EXPECT_EQ(tree.get(c, k, &v), (k % 2) == 1) << k;
  }
  // Reinsert the erased keys.
  for (Key k = 0; k < 64; k += 2) tree.put(c, k, k + 100);
  for (Key k = 0; k < 64; k += 2) {
    Value v = 0;
    EXPECT_TRUE(tree.get(c, k, &v));
    EXPECT_EQ(v, k + 100);
  }
  tree.destroy(c);
}

TEST(EunoTree, SplitsPreserveEveryKeyAndMark) {
  ctx::NativeEnv env;
  ctx::NativeCtx c(env, 0);
  EunoBPTree<ctx::NativeCtx> tree(c, EunoConfig::with_markbits());
  // Dense inserts into one region force repeated compaction + splits.
  for (Key k = 0; k < 2000; ++k) tree.put(c, k, ~k);
  tree.check_invariants();
  EXPECT_EQ(tree.size_slow(), 2000u);
  EXPECT_GT(tree.height(), 1);
  for (Key k = 0; k < 2000; ++k) {
    Value v = 0;
    ASSERT_TRUE(tree.get(c, k, &v)) << k;
    ASSERT_EQ(v, ~k);
  }
  tree.destroy(c);
}

TEST(EunoTree, ScanMergesSegmentsSorted) {
  ctx::NativeEnv env;
  ctx::NativeCtx c(env, 0);
  EunoBPTree<ctx::NativeCtx> tree(c, EunoConfig::full());
  // Random insertion order → records scattered across segments.
  Xoshiro256 rng(11);
  std::vector<Key> keys;
  for (Key k = 0; k < 800; ++k) keys.push_back(k * 5);
  for (std::size_t i = keys.size(); i > 1; --i) {
    std::swap(keys[i - 1], keys[rng.next_bounded(i)]);
  }
  for (Key k : keys) tree.put(c, k, k + 1);
  std::vector<KV> buf(200);
  const std::size_t n = tree.scan(c, 1000, buf.size(), buf.data());
  ASSERT_EQ(n, 200u);
  EXPECT_EQ(buf[0].first, 1000u);
  for (std::size_t i = 1; i < n; ++i) {
    EXPECT_EQ(buf[i].first, buf[i - 1].first + 5);
    EXPECT_EQ(buf[i].second, buf[i].first + 1);
  }
  tree.destroy(c);
}

TEST(EunoTree, RebalanceMergesSparseLeaves) {
  ctx::NativeEnv env;
  ctx::NativeCtx c(env, 0);
  EunoBPTree<ctx::NativeCtx> tree(c, EunoConfig::full());
  for (Key k = 0; k < 3000; ++k) tree.put(c, k, k);
  for (Key k = 0; k < 3000; ++k) {
    if (k % 8 != 0) EXPECT_TRUE(tree.erase(c, k));
  }
  tree.check_invariants();
  const std::size_t merges = tree.rebalance(c);
  EXPECT_GT(merges, 0u);
  tree.check_invariants();
  EXPECT_EQ(tree.size_slow(), 3000u / 8);
  for (Key k = 0; k < 3000; k += 8) {
    Value v = 0;
    ASSERT_TRUE(tree.get(c, k, &v)) << k;
    ASSERT_EQ(v, k);
  }
  // Scans still see the full ordered remainder.
  std::vector<KV> buf(400);
  const std::size_t n = tree.scan(c, 0, buf.size(), buf.data());
  ASSERT_EQ(n, 375u);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(buf[i].first, i * 8);
  tree.destroy(c);
}

TEST(EunoTree, AutoRebalanceTriggersOnThreshold) {
  ctx::NativeEnv env;
  ctx::NativeCtx c(env, 0);
  EunoConfig cfg = EunoConfig::full();
  cfg.rebalance_threshold = 256;
  EunoBPTree<ctx::NativeCtx> tree(c, cfg);
  for (Key k = 0; k < 1200; ++k) tree.put(c, k, k);
  for (Key k = 0; k < 1200; ++k) {
    if (k % 4 != 0) tree.erase(c, k);  // 900 deletes > threshold
  }
  tree.check_invariants();
  EXPECT_EQ(tree.size_slow(), 300u);
  EXPECT_GT(tree.epochs().retired_count(), 0u)
      << "auto-rebalance should have merged and retired leaves";
  tree.destroy(c);
}

TEST(EunoTree, AdaptiveFlipsToFullCcmUnderContention) {
  sim::Simulation simulation(test_sim_config());
  ctx::SimCtx setup(simulation, 0);
  EunoConfig cfg = EunoConfig::full();
  cfg.adapt_window = 16;
  EunoBPTree<ctx::SimCtx> tree(setup, cfg);
  for (Key k = 0; k < 64; ++k) tree.put(setup, k, k);

  std::vector<std::uint64_t> fallbacks(12);
  for (int t = 0; t < 12; ++t) {
    simulation.spawn(t, [&, t](int core) {
      ctx::SimCtx c(simulation, core);
      Xoshiro256 rng(31 + static_cast<std::uint64_t>(t));
      for (int i = 0; i < 500; ++i) {
        tree.put(c, rng.next_bounded(4), i);  // 4 ultra-hot keys
      }
      fallbacks[t] = c.stats().total().fallbacks;
    });
  }
  simulation.run();
  tree.check_invariants();
  // Under this contention the hot leaf must have left bypass mode at some
  // point; its effect is indirect, so just assert correctness + progress.
  ctx::SimCtx verify(simulation, 0);
  for (Key k = 0; k < 4; ++k) {
    Value v;
    EXPECT_TRUE(tree.get(verify, k, &v));
  }
  tree.destroy(verify);
}

TEST(EunoTree, LowerRegionConflictsDominateUnderContention) {
  // The premise of region splitting (§3): conflicts concentrate in the leaf
  // layer, so lower-region aborts should far outnumber upper-region aborts.
  sim::Simulation simulation(test_sim_config());
  ctx::SimCtx setup(simulation, 0);
  EunoConfig cfg = EunoConfig::with_markbits();
  EunoBPTree<ctx::SimCtx> tree(setup, cfg);
  for (Key k = 0; k < 4096; ++k) tree.put(setup, k, k);

  htm::TxStats upper, lower;
  std::vector<ctx::SiteStats> stats(16);
  for (int t = 0; t < 16; ++t) {
    simulation.spawn(t, [&, t](int core) {
      ctx::SimCtx c(simulation, core);
      Xoshiro256 rng(77 + static_cast<std::uint64_t>(t));
      for (int i = 0; i < 400; ++i) {
        tree.put(c, rng.next_bounded(32), i);
      }
      stats[t] = c.stats();
    });
  }
  simulation.run();
  for (const auto& s : stats) {
    upper += s.at(ctx::TxSite::kUpper);
    lower += s.at(ctx::TxSite::kLower);
  }
  EXPECT_GT(lower.total_aborts() + upper.total_aborts(), 0u);
  EXPECT_GE(lower.total_aborts() * 1, upper.total_aborts() * 4)
      << "lower-region aborts should dominate (paper: >90% in leaf level)";
  tree.destroy(setup);
}

TEST(EunoTree, DestroyReturnsAllMemoryIncludingReserved) {
  auto& ms = MemStats::instance();
  ms.reset();
  ctx::NativeEnv env;
  ctx::NativeCtx c(env, 0);
  {
    EunoBPTree<ctx::NativeCtx> tree(c, EunoConfig::full());
    for (Key k = 0; k < 3000; ++k) tree.put(c, k, k);
    for (Key k = 0; k < 3000; k += 3) tree.erase(c, k);
    tree.rebalance(c);
    EXPECT_GT(ms.snapshot(MemClass::kReservedKeys).live_bytes, 0u);
    tree.destroy(c);
  }
  EXPECT_EQ(ms.tree_live_bytes(), 0u);
  ms.reset();
}

TEST(EunoTree, ReservedBufferAppearsAfterCompaction) {
  ctx::NativeEnv env;
  ctx::NativeCtx c(env, 0);
  auto& ms = MemStats::instance();
  ms.reset();
  EunoBPTree<ctx::NativeCtx> tree(c, EunoConfig::full());
  // Enough inserts into one leaf to overflow its segments.
  for (Key k = 0; k < 17; ++k) tree.put(c, k, k);
  EXPECT_GT(ms.snapshot(MemClass::kReservedKeys).alloc_count, 0u);
  tree.check_invariants();
  tree.destroy(c);
  ms.reset();
}

TEST(EunoTree, UpdateDoesNotGrowTree) {
  ctx::NativeEnv env;
  ctx::NativeCtx c(env, 0);
  EunoBPTree<ctx::NativeCtx> tree(c, EunoConfig::full());
  for (Key k = 0; k < 100; ++k) tree.put(c, k, 0);
  const std::size_t before = tree.size_slow();
  for (int round = 0; round < 50; ++round) {
    for (Key k = 0; k < 100; ++k) tree.put(c, k, round);
  }
  EXPECT_EQ(tree.size_slow(), before);
  Value v = 0;
  ASSERT_TRUE(tree.get(c, 50, &v));
  EXPECT_EQ(v, 49u);
  tree.destroy(c);
}

TEST(EunoTree, EmptyTree) {
  ctx::NativeEnv env;
  ctx::NativeCtx c(env, 0);
  EunoBPTree<ctx::NativeCtx> tree(c, EunoConfig::full());
  Value v;
  EXPECT_FALSE(tree.get(c, 123, &v));
  EXPECT_FALSE(tree.erase(c, 123));
  KV buf[4];
  EXPECT_EQ(tree.scan(c, 0, 4, buf), 0u);
  EXPECT_EQ(tree.rebalance(c), 0u);
  tree.destroy(c);
}

}  // namespace
}  // namespace euno::tests
