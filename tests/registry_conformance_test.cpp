// Registry-driven conformance: every tree in the registry — whatever its
// layout/policy composition — is swept through the shared oracle, scan
// boundary and concurrent-stress batteries on BOTH execution contexts, via
// the same type-erased factories the benches dispatch through. Registering
// a structure is what puts it under conformance; there is no second list to
// keep in sync.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "ctx/native_ctx.hpp"
#include "ctx/sim_ctx.hpp"
#include "tree_conformance.hpp"
#include "trees/registry.hpp"

namespace euno::tests {
namespace {

using trees::AnyTree;
using trees::TreeBuildOptions;
using trees::TreeEntry;

/// Value-semantics shim: the shared conformance helpers in
/// tree_conformance.hpp drive `tree.op(...)` members, the registry hands
/// back unique_ptr<AnyTree>; this adapts one to the other.
template <class Ctx>
struct RegistryTree {
  std::unique_ptr<AnyTree<Ctx>> t;

  bool get(Ctx& c, Key k, Value* v) { return t->get(c, k, v); }
  void put(Ctx& c, Key k, Value v) { t->put(c, k, v); }
  bool erase(Ctx& c, Key k) { return t->erase(c, k); }
  std::size_t scan(Ctx& c, Key start, std::size_t n, KV* out) {
    return t->scan(c, start, n, out);
  }
  void check_invariants() { t->check_invariants(); }
  void destroy(Ctx& c) { t->destroy(c); }
};

RegistryTree<ctx::SimCtx> make_sim(ctx::SimCtx& c, const TreeEntry& e) {
  return RegistryTree<ctx::SimCtx>{e.make_sim(c, TreeBuildOptions{})};
}

RegistryTree<ctx::NativeCtx> make_native(ctx::NativeCtx& c,
                                         const TreeEntry& e) {
  return RegistryTree<ctx::NativeCtx>{e.make_native(c, TreeBuildOptions{})};
}

class RegistryConformance : public ::testing::TestWithParam<TreeEntry> {};

TEST_P(RegistryConformance, OracleSim) {
  sim::Simulation simulation(test_sim_config());
  ctx::SimCtx c(simulation, 0);
  auto tree = make_sim(c, GetParam());
  run_oracle_workload(tree, c, 911, 6000, 800);
  tree.check_invariants();
  tree.destroy(c);
}

TEST_P(RegistryConformance, OracleNative) {
  ctx::NativeEnv env;
  ctx::NativeCtx c(env, 0);
  auto tree = make_native(c, GetParam());
  run_oracle_workload(tree, c, 912, 12000, 3000);
  tree.check_invariants();
  tree.destroy(c);
}

TEST_P(RegistryConformance, ScanBoundarySim) {
  sim::Simulation simulation(test_sim_config());
  ctx::SimCtx c(simulation, 0);
  auto tree = make_sim(c, GetParam());
  run_scan_boundary_workload(tree, c);
  tree.destroy(c);
}

TEST_P(RegistryConformance, ScanBoundaryNative) {
  ctx::NativeEnv env;
  ctx::NativeCtx c(env, 0);
  auto tree = make_native(c, GetParam());
  run_scan_boundary_workload(tree, c);
  tree.destroy(c);
}

TEST_P(RegistryConformance, ScanChunkedSweepSim) {
  sim::Simulation simulation(test_sim_config());
  ctx::SimCtx c(simulation, 0);
  auto tree = make_sim(c, GetParam());

  std::map<Key, Value> oracle;
  Xoshiro256 rng(913);
  for (int i = 0; i < 2500; ++i) {
    const Key k = rng.next_bounded(4000);
    if (rng.next_bounded(4) == 0) {
      tree.erase(c, k);
      oracle.erase(k);
    } else {
      const Value v = rng.next();
      tree.put(c, k, v);
      oracle[k] = v;
    }
  }
  for (const std::size_t chunk :
       {std::size_t{1}, std::size_t{7}, std::size_t{33}, std::size_t{128}}) {
    std::vector<KV> buf(chunk);
    Key start = 0;
    std::size_t total = 0;
    auto it = oracle.begin();
    for (;;) {
      const std::size_t n = tree.scan(c, start, chunk, buf.data());
      for (std::size_t j = 0; j < n; ++j, ++it) {
        ASSERT_NE(it, oracle.end()) << "chunk=" << chunk;
        ASSERT_EQ(buf[j].first, it->first) << "chunk=" << chunk;
        ASSERT_EQ(buf[j].second, it->second) << "chunk=" << chunk;
      }
      total += n;
      if (n < chunk) break;
      if (buf[n - 1].first == ~0ull) break;
      start = buf[n - 1].first + 1;
    }
    ASSERT_EQ(it, oracle.end()) << "chunk=" << chunk;
    ASSERT_EQ(total, oracle.size()) << "chunk=" << chunk;
  }
  tree.check_invariants();
  tree.destroy(c);
}

TEST_P(RegistryConformance, SimConcurrentStress) {
  sim::Simulation simulation(test_sim_config());
  ctx::SimCtx setup(simulation, 0);
  auto tree = make_sim(setup, GetParam());

  constexpr int kThreads = 8;
  constexpr int kOps = 300;
  constexpr std::uint64_t kHot = 48;
  constexpr std::uint64_t kStripe = 1u << 20;
  constexpr std::uint64_t kSeed = 914;
  for (int t = 0; t < kThreads; ++t) {
    simulation.spawn(t, [&, t](int core) {
      ctx::SimCtx c(simulation, core);
      Xoshiro256 rng(kSeed + static_cast<std::uint64_t>(t));
      for (int i = 0; i < kOps; ++i) {
        if (rng.next_bounded(2) == 0) {
          const Key key = kStripe * (static_cast<std::uint64_t>(t) + 1) +
                          rng.next_bounded(256);
          tree.put(c, key, key * 7);
        } else {
          const Key key = rng.next_bounded(kHot);
          if (rng.next_bounded(3) == 0) {
            Value v;
            (void)tree.get(c, key, &v);
          } else {
            tree.put(c, key, (static_cast<Value>(t) << 32) | i);
          }
        }
      }
    });
  }
  simulation.run();

  tree.check_invariants();
  ctx::SimCtx verify(simulation, 0);
  for (int t = 0; t < kThreads; ++t) {
    Xoshiro256 rng(kSeed + static_cast<std::uint64_t>(t));
    std::map<Key, Value> mine;
    for (int i = 0; i < kOps; ++i) {
      if (rng.next_bounded(2) == 0) {
        const Key key = kStripe * (static_cast<std::uint64_t>(t) + 1) +
                        rng.next_bounded(256);
        mine[key] = key * 7;
      } else {
        rng.next_bounded(kHot);
        rng.next_bounded(3);  // keep the replayed stream in sync
      }
    }
    for (const auto& [k, v] : mine) {
      Value got = 0;
      ASSERT_TRUE(tree.get(verify, k, &got)) << "lost striped key " << k;
      ASSERT_EQ(got, v);
    }
  }
  tree.destroy(verify);
}

// Scan-during-splice interleaving: one writer drives continuous structural
// change (ascending inserts force a split cascade; erases of its own keys
// force underflow churn) while scanners sweep the same key space under
// heavy random preemption, so every scan straddles node replacements —
// copy-on-write splices for rcu-bptree, version-bumped splits elsewhere. A
// scanner must always observe ascending keys, untorn values, and every
// preloaded immortal key inside the window it covered: a scan that walks
// into a retired/stale node surfaces here as a vanished immortal or an
// out-of-order batch.
TEST_P(RegistryConformance, ScanDuringSpliceSim) {
  sim::Simulation simulation(test_sim_config());
  sim::SchedulePolicy sched;
  sched.mode = sim::SchedulePolicy::Mode::kRandom;
  sched.seed = 916;
  sched.preempt_pct = 90;
  simulation.set_schedule_policy(sched);
  ctx::SimCtx setup(simulation, 0);
  auto tree = make_sim(setup, GetParam());

  constexpr std::uint64_t kRange = 4096;
  constexpr std::uint64_t kImmortalStride = 32;  // 128 immortal keys
  constexpr int kScanners = 3;
  constexpr int kScansEach = 12;
  constexpr std::size_t kChunk = 48;
  for (Key k = 0; k < kRange; k += kImmortalStride) {
    tree.put(setup, k, k * 7 + 3);
  }

  // Writer on core 0: ascending inserts (every split shifts immortal keys
  // into fresh leaves) interleaved with erases of its own earlier inserts.
  simulation.spawn(0, [&](int core) {
    ctx::SimCtx c(simulation, core);
    for (Key k = 0; k < kRange; ++k) {
      if (k % kImmortalStride == 0) continue;
      tree.put(c, k, k * 7 + 3);
      if (k >= 3 && (k % 3) == 0 && ((k - 3) % kImmortalStride) != 0) {
        (void)tree.erase(c, k - 3);
      }
    }
  });
  for (int s = 0; s < kScanners; ++s) {
    simulation.spawn(1 + s, [&, s](int core) {
      ctx::SimCtx c(simulation, core);
      Xoshiro256 rng(916 + static_cast<std::uint64_t>(s));
      std::vector<KV> buf(kChunk);
      for (int i = 0; i < kScansEach; ++i) {
        const Key start = rng.next_bounded(kRange);
        const std::size_t n = tree.scan(c, start, kChunk, buf.data());
        Key prev = 0;
        bool have_prev = false;
        for (std::size_t j = 0; j < n; ++j) {
          ASSERT_GE(buf[j].first, start);
          if (have_prev) {
            ASSERT_GT(buf[j].first, prev) << "scan order violation";
          }
          ASSERT_EQ(buf[j].second, buf[j].first * 7 + 3) << "torn value";
          prev = buf[j].first;
          have_prev = true;
        }
        if (!have_prev) continue;
        // Window completeness: every immortal key in [start, prev] must
        // have been returned — splices replace nodes, never hide keys.
        std::size_t at = 0;
        Key ik = (start + kImmortalStride - 1) / kImmortalStride;
        for (ik *= kImmortalStride; ik <= prev; ik += kImmortalStride) {
          while (at < n && buf[at].first < ik) ++at;
          ASSERT_TRUE(at < n && buf[at].first == ik)
              << "immortal key " << ik << " missing from scan window ["
              << start << ", " << prev << "]";
        }
      }
    });
  }
  simulation.run();

  tree.check_invariants();
  ctx::SimCtx verify(simulation, 0);
  for (Key k = 0; k < kRange; k += kImmortalStride) {
    Value v = 0;
    ASSERT_TRUE(tree.get(verify, k, &v)) << "immortal key " << k << " lost";
    ASSERT_EQ(v, k * 7 + 3);
  }
  tree.destroy(verify);
}

TEST_P(RegistryConformance, NativeConcurrentStress) {
  ctx::NativeEnv env;
  ctx::NativeCtx setup(env, 0);
  auto tree = make_native(setup, GetParam());

  constexpr int kThreads = 4;
  constexpr int kOps = 2000;
  constexpr std::uint64_t kHot = 48;
  constexpr std::uint64_t kStripe = 1u << 20;
  constexpr std::uint64_t kSeed = 915;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      ctx::NativeCtx c(env, t);
      Xoshiro256 rng(kSeed + static_cast<std::uint64_t>(t));
      for (int i = 0; i < kOps; ++i) {
        if (rng.next_bounded(2) == 0) {
          const Key key = kStripe * (static_cast<std::uint64_t>(t) + 1) +
                          rng.next_bounded(256);
          tree.put(c, key, key * 7);
        } else {
          const Key key = rng.next_bounded(kHot);
          if (rng.next_bounded(3) == 0) {
            Value v;
            (void)tree.get(c, key, &v);
          } else {
            tree.put(c, key, (static_cast<Value>(t) << 32) | i);
          }
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  tree.check_invariants();
  ctx::NativeCtx verify(env, 0);
  for (int t = 0; t < kThreads; ++t) {
    Xoshiro256 rng(kSeed + static_cast<std::uint64_t>(t));
    std::map<Key, Value> mine;
    for (int i = 0; i < kOps; ++i) {
      if (rng.next_bounded(2) == 0) {
        const Key key = kStripe * (static_cast<std::uint64_t>(t) + 1) +
                        rng.next_bounded(256);
        mine[key] = key * 7;
      } else {
        rng.next_bounded(kHot);
        rng.next_bounded(3);
      }
    }
    for (const auto& [k, v] : mine) {
      Value got = 0;
      ASSERT_TRUE(tree.get(verify, k, &got)) << "lost striped key " << k;
      ASSERT_EQ(got, v);
    }
  }
  tree.destroy(verify);
}

std::string entry_test_name(const ::testing::TestParamInfo<TreeEntry>& info) {
  std::string out;
  for (char ch : info.param.name) out += (ch == '-') ? '_' : ch;
  return out;
}

INSTANTIATE_TEST_SUITE_P(AllRegisteredTrees, RegistryConformance,
                         ::testing::ValuesIn(trees::tree_registry().entries()),
                         entry_test_name);

}  // namespace
}  // namespace euno::tests
