// Tests for the OLC ("Masstree"-style) B+Tree and its HTM-elided variant.
#include <gtest/gtest.h>

#include "tree_conformance.hpp"
#include "trees/olc/olc_bptree.hpp"

namespace euno::tests {
namespace {

using trees::OlcBPTree;

struct NativeAdapter {
  static OlcBPTree<ctx::NativeCtx> make(ctx::NativeCtx& c) {
    return OlcBPTree<ctx::NativeCtx>(c);
  }
};
struct SimAdapter {
  static OlcBPTree<ctx::SimCtx> make(ctx::SimCtx& c) {
    return OlcBPTree<ctx::SimCtx>(c);
  }
};

EUNO_TREE_CONFORMANCE_SUITE(OlcBPTree, NativeAdapter, SimAdapter)

struct HtmNativeAdapter {
  static OlcBPTree<ctx::NativeCtx> make(ctx::NativeCtx& c) {
    typename OlcBPTree<ctx::NativeCtx>::Options opt;
    opt.htm_elide = true;
    return OlcBPTree<ctx::NativeCtx>(c, opt);
  }
};
struct HtmSimAdapter {
  static OlcBPTree<ctx::SimCtx> make(ctx::SimCtx& c) {
    typename OlcBPTree<ctx::SimCtx>::Options opt;
    opt.htm_elide = true;
    return OlcBPTree<ctx::SimCtx>(c, opt);
  }
};

EUNO_TREE_CONFORMANCE_SUITE(HtmMasstree, HtmNativeAdapter, HtmSimAdapter)

TEST(OlcBPTree, VersionsQuiesceUnlocked) {
  ctx::NativeEnv env;
  ctx::NativeCtx c(env, 0);
  auto tree = NativeAdapter::make(c);
  for (Key k = 0; k < 4000; ++k) tree.put(c, k * 7 % 4000, k);
  tree.check_invariants();  // asserts no version word still has the lock bit
  tree.destroy(c);
}

TEST(OlcBPTree, ScanAcrossSplitsStaysSorted) {
  ctx::NativeEnv env;
  ctx::NativeCtx c(env, 0);
  auto tree = NativeAdapter::make(c);
  for (Key k = 0; k < 1000; ++k) tree.put(c, k * 2, k);
  std::vector<KV> buf(300);
  const std::size_t n = tree.scan(c, 100, buf.size(), buf.data());
  ASSERT_EQ(n, 300u);
  EXPECT_EQ(buf[0].first, 100u);
  for (std::size_t i = 1; i < n; ++i) EXPECT_EQ(buf[i].first, buf[i - 1].first + 2);
  tree.destroy(c);
}

TEST(HtmMasstree, VersionBumpsCauseAbortsUnderSimContention) {
  // HTM-Masstree's pathology (§5.2): writers bump node versions inside the
  // region, so even readers of *different* keys in the same leaf conflict.
  sim::Simulation simulation(test_sim_config());
  ctx::SimCtx setup(simulation, 0);
  auto tree = HtmSimAdapter::make(setup);
  for (Key k = 0; k < 1000; ++k) tree.put(setup, k, k);

  std::vector<std::uint64_t> aborts(12);
  for (int t = 0; t < 12; ++t) {
    simulation.spawn(t, [&, t](int core) {
      ctx::SimCtx c(simulation, core);
      Xoshiro256 rng(400 + static_cast<std::uint64_t>(t));
      for (int i = 0; i < 300; ++i) {
        // Different keys, same few leaves.
        const Key key = rng.next_bounded(64);
        if (t % 2 == 0) {
          tree.put(c, key, i);
        } else {
          Value v;
          (void)tree.get(c, key, &v);
        }
      }
      aborts[t] = c.stats().at(ctx::TxSite::kMono).total_aborts();
    });
  }
  simulation.run();
  std::uint64_t total = 0;
  for (auto a : aborts) total += a;
  EXPECT_GT(total, 50u) << "version-word writes must generate HTM conflicts";
  tree.check_invariants();
  tree.destroy(setup);
}

}  // namespace
}  // namespace euno::tests
