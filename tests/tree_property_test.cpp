// Parameterized property tests: every tree kind, several shapes and seeds,
// driven through randomized oracle workloads and concurrent stress with
// invariant checking. TEST_P sweeps are the coverage backbone — each
// instantiation exercises a distinct (structure, workload) combination.
#include <gtest/gtest.h>

#include <map>

#include "core/euno_tree.hpp"
#include "repro_main.hpp"
#include "tree_conformance.hpp"
#include "trees/htmbtree/htm_bptree.hpp"
#include "trees/olc/olc_bptree.hpp"

namespace euno::tests {
namespace {

enum class Kind { kBaseline, kOlc, kHtmMasstree, kEunoS1, kEunoS2, kEunoS4, kEunoS8 };

struct PropertyParam {
  Kind kind;
  std::uint64_t seed;
  int ops;
  std::uint64_t key_range;
  bool adaptive;  // Euno kinds only

  std::string name() const {
    std::string k;
    switch (kind) {
      case Kind::kBaseline: k = "Baseline"; break;
      case Kind::kOlc: k = "Olc"; break;
      case Kind::kHtmMasstree: k = "HtmMasstree"; break;
      case Kind::kEunoS1: k = "EunoS1"; break;
      case Kind::kEunoS2: k = "EunoS2"; break;
      case Kind::kEunoS4: k = "EunoS4"; break;
      case Kind::kEunoS8: k = "EunoS8"; break;
    }
    return k + "_seed" + std::to_string(seed) + "_r" + std::to_string(key_range) +
           (adaptive ? "_adapt" : "");
  }
};

/// Type-erased driver so one parameterized suite covers every tree type.
template <class Ctx>
struct AnyTree {
  std::function<bool(Ctx&, Key, Value*)> get;
  std::function<void(Ctx&, Key, Value)> put;
  std::function<bool(Ctx&, Key)> erase;
  std::function<std::size_t(Ctx&, Key, std::size_t, KV*)> scan;
  std::function<void()> check;
  std::function<void(Ctx&)> destroy;
};

template <class Ctx, class Tree>
AnyTree<Ctx> wrap(std::shared_ptr<Tree> t) {
  AnyTree<Ctx> a;
  a.get = [t](Ctx& c, Key k, Value* v) { return t->get(c, k, v); };
  a.put = [t](Ctx& c, Key k, Value v) { t->put(c, k, v); };
  a.erase = [t](Ctx& c, Key k) { return t->erase(c, k); };
  a.scan = [t](Ctx& c, Key k, std::size_t n, KV* out) {
    return t->scan(c, k, n, out);
  };
  a.check = [t] { t->check_invariants(); };
  a.destroy = [t](Ctx& c) { t->destroy(c); };
  return a;
}

template <class Ctx>
AnyTree<Ctx> make_any(Ctx& c, const PropertyParam& p) {
  using trees::HtmBPTree;
  using trees::OlcBPTree;
  core::EunoConfig cfg =
      p.adaptive ? core::EunoConfig::full() : core::EunoConfig::with_markbits();
  switch (p.kind) {
    case Kind::kBaseline:
      return wrap<Ctx>(std::make_shared<HtmBPTree<Ctx>>(c));
    case Kind::kOlc:
      return wrap<Ctx>(std::make_shared<OlcBPTree<Ctx>>(c));
    case Kind::kHtmMasstree: {
      typename OlcBPTree<Ctx>::Options opt;
      opt.htm_elide = true;
      return wrap<Ctx>(std::make_shared<OlcBPTree<Ctx>>(c, opt));
    }
    case Kind::kEunoS1:
      return wrap<Ctx>(std::make_shared<core::EunoBPTree<Ctx, 16, 1>>(c, cfg));
    case Kind::kEunoS2:
      return wrap<Ctx>(std::make_shared<core::EunoBPTree<Ctx, 16, 2>>(c, cfg));
    case Kind::kEunoS4:
      return wrap<Ctx>(std::make_shared<core::EunoBPTree<Ctx, 16, 4>>(c, cfg));
    case Kind::kEunoS8:
      return wrap<Ctx>(std::make_shared<core::EunoBPTree<Ctx, 16, 8>>(c, cfg));
  }
  return {};
}

class TreeProperty : public ::testing::TestWithParam<PropertyParam> {};

TEST_P(TreeProperty, OracleAgreesWithStdMap) {
  const auto& p = GetParam();
  repro_extra() = "# param: " + p.name() + " seed=" + std::to_string(p.seed);
  ctx::NativeEnv env;
  ctx::NativeCtx c(env, 0);
  auto tree = make_any(c, p);

  std::map<Key, Value> oracle;
  Xoshiro256 rng(p.seed);
  std::vector<KV> buf(32);
  for (int i = 0; i < p.ops; ++i) {
    const Key key = rng.next_bounded(p.key_range);
    switch (rng.next_bounded(8)) {
      case 0:
      case 1:
      case 2: {
        const Value v = rng.next();
        tree.put(c, key, v);
        oracle[key] = v;
        break;
      }
      case 3:
      case 4: {
        Value v = 0;
        const bool f = tree.get(c, key, &v);
        const auto it = oracle.find(key);
        ASSERT_EQ(f, it != oracle.end()) << "op " << i;
        if (f) ASSERT_EQ(v, it->second);
        break;
      }
      case 5:
      case 6:
        ASSERT_EQ(tree.erase(c, key), oracle.erase(key) > 0) << "op " << i;
        break;
      case 7: {
        const std::size_t n = tree.scan(c, key, buf.size(), buf.data());
        auto it = oracle.lower_bound(key);
        for (std::size_t j = 0; j < n; ++j, ++it) {
          ASSERT_NE(it, oracle.end());
          ASSERT_EQ(buf[j].first, it->first);
          ASSERT_EQ(buf[j].second, it->second);
        }
        break;
      }
    }
  }
  tree.check();
  tree.destroy(c);
}

TEST_P(TreeProperty, SimConcurrencyPreservesInvariants) {
  const auto& p = GetParam();
  repro_extra() = "# param: " + p.name() + " seed=" + std::to_string(p.seed);
  sim::Simulation simulation(test_sim_config());
  ctx::SimCtx setup(simulation, 0);
  auto tree = make_any(setup, p);

  const std::uint64_t hot = std::min<std::uint64_t>(p.key_range, 96);
  for (int t = 0; t < 6; ++t) {
    simulation.spawn(t, [&, t](int core) {
      ctx::SimCtx c(simulation, core);
      Xoshiro256 rng(p.seed * 31 + static_cast<std::uint64_t>(t));
      for (int i = 0; i < 250; ++i) {
        const Key key = rng.next_bounded(hot);
        const auto roll = rng.next_bounded(10);
        if (roll < 5) {
          tree.put(c, key, key * 1000 + 7);
        } else if (roll < 8) {
          Value v;
          if (tree.get(c, key, &v)) {
            // Values are a pure function of the key: torn or stale reads
            // would be visible immediately.
            ASSERT_EQ(v, key * 1000 + 7);
          }
        } else if (roll < 9) {
          (void)tree.erase(c, key);
        } else {
          KV buf[16];
          const std::size_t n = tree.scan(c, key, 16, buf);
          for (std::size_t j = 1; j < n; ++j) {
            ASSERT_GT(buf[j].first, buf[j - 1].first) << "scan must be sorted";
          }
          for (std::size_t j = 0; j < n; ++j) {
            ASSERT_EQ(buf[j].second, buf[j].first * 1000 + 7);
          }
        }
      }
    });
  }
  simulation.run();
  tree.check();
  tree.destroy(setup);
}

std::vector<PropertyParam> property_params() {
  std::vector<PropertyParam> ps;
  const Kind kinds[] = {Kind::kBaseline, Kind::kOlc,    Kind::kHtmMasstree,
                        Kind::kEunoS1,   Kind::kEunoS2, Kind::kEunoS4,
                        Kind::kEunoS8};
  for (Kind k : kinds) {
    for (std::uint64_t seed : {11ull, 12ull, 13ull}) {
      ps.push_back(PropertyParam{k, seed, 6000, 700, false});
    }
    ps.push_back(PropertyParam{k, 14, 4000, 50, false});   // dense duplicates
    ps.push_back(PropertyParam{k, 15, 3000, 100000, false});  // sparse
  }
  // Adaptive-enabled Euno variants.
  ps.push_back(PropertyParam{Kind::kEunoS4, 16, 6000, 700, true});
  ps.push_back(PropertyParam{Kind::kEunoS2, 17, 6000, 700, true});
  return ps;
}

INSTANTIATE_TEST_SUITE_P(AllTrees, TreeProperty,
                         ::testing::ValuesIn(property_params()),
                         [](const ::testing::TestParamInfo<PropertyParam>& info) {
                           return info.param.name();
                         });

}  // namespace
}  // namespace euno::tests

EUNO_TEST_MAIN_WITH_REPRO()
