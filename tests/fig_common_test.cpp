// Coverage for the shared bench plumbing: BenchArgs --jobs parsing, the
// sweep helpers in fig_common.hpp, and the jobs=1 sequential fallback of
// run_figure_sweep (every figure binary routes its spec list through it).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "fig_common.hpp"
#include "trees/registry.hpp"

namespace euno {
namespace {

stats::BenchArgs parse(std::vector<std::string> argv_strings) {
  argv_strings.insert(argv_strings.begin(), "bench");
  std::vector<char*> argv;
  argv.reserve(argv_strings.size());
  for (auto& s : argv_strings) argv.push_back(s.data());
  return stats::BenchArgs::parse(static_cast<int>(argv.size()), argv.data());
}

TEST(BenchArgs, JobsDefaultsToSequential) {
  EXPECT_EQ(parse({}).jobs, 1);
  EXPECT_EQ(parse({"--quick"}).jobs, 1);
}

TEST(BenchArgs, JobsEqualsForm) {
  EXPECT_EQ(parse({"--jobs=3"}).jobs, 3);
  EXPECT_EQ(parse({"--jobs=16"}).jobs, 16);
}

TEST(BenchArgs, JobsTwoTokenForm) {
  EXPECT_EQ(parse({"--jobs", "5"}).jobs, 5);
  const auto a = parse({"--jobs", "2", "--quick"});
  EXPECT_EQ(a.jobs, 2);
  EXPECT_TRUE(a.quick);
}

TEST(BenchArgs, JobsAutoPicksHardwareConcurrency) {
  // "auto" must resolve to something usable on any host, including ones
  // where hardware_concurrency() reports 0.
  EXPECT_GE(parse({"--jobs=auto"}).jobs, 1);
  EXPECT_GE(parse({"--jobs", "auto"}).jobs, 1);
}

TEST(BenchArgs, JobsClampsNonsenseToSequential) {
  EXPECT_EQ(parse({"--jobs=0"}).jobs, 1);
  EXPECT_EQ(parse({"--jobs=-4"}).jobs, 1);
}

TEST(BenchArgs, JobsComposesWithOtherFlags) {
  const auto a = parse({"--csv", "--jobs=4", "--ops=123", "--seed=7"});
  EXPECT_TRUE(a.csv);
  EXPECT_EQ(a.jobs, 4);
  EXPECT_EQ(a.ops_per_thread, 123u);
  EXPECT_EQ(a.seed, 7u);
}

TEST(BenchArgs, StoreFlagsParse) {
  const auto a =
      parse({"--store-shards=8", "--offered-load=2.5", "--deadline-us=50"});
  EXPECT_EQ(a.store_shards, 8);
  EXPECT_DOUBLE_EQ(a.offered_load, 2.5);
  EXPECT_EQ(a.deadline_us, 50u);
  // All off by default.
  const auto d = parse({});
  EXPECT_EQ(d.store_shards, 0);
  EXPECT_EQ(d.offered_load, 0.0);
  EXPECT_EQ(d.deadline_us, 0u);
}

using BenchArgsDeathTest = ::testing::Test;

TEST(BenchArgsDeathTest, RejectsDegenerateStoreShards) {
  // 0 would silently run the single-tree path; junk and huge counts are
  // config bugs. All must exit 2 with the usage line, not be clamped.
  EXPECT_EXIT(parse({"--store-shards=0"}), ::testing::ExitedWithCode(2),
              "--store-shards=0");
  EXPECT_EXIT(parse({"--store-shards=8x"}), ::testing::ExitedWithCode(2),
              "--store-shards=8x");
  EXPECT_EXIT(parse({"--store-shards=65536"}), ::testing::ExitedWithCode(2),
              "--store-shards=65536");
}

TEST(BenchArgsDeathTest, RejectsNonPositiveOfferedLoad) {
  EXPECT_EXIT(parse({"--offered-load=0"}), ::testing::ExitedWithCode(2),
              "--offered-load=0");
  EXPECT_EXIT(parse({"--offered-load=-1"}), ::testing::ExitedWithCode(2),
              "--offered-load=-1");
  EXPECT_EXIT(parse({"--offered-load=nan"}), ::testing::ExitedWithCode(2),
              "--offered-load=nan");
  EXPECT_EXIT(parse({"--offered-load=2.5q"}), ::testing::ExitedWithCode(2),
              "--offered-load=2.5q");
}

TEST(BenchArgsDeathTest, RejectsNonPositiveDeadline) {
  EXPECT_EXIT(parse({"--deadline-us=0"}), ::testing::ExitedWithCode(2),
              "--deadline-us=0");
  EXPECT_EXIT(parse({"--deadline-us=5ms"}), ::testing::ExitedWithCode(2),
              "--deadline-us=5ms");
}

TEST(BenchArgs, KeyDomainAndScanLenParse) {
  const auto d = parse({});
  EXPECT_EQ(d.key_domain, "");  // empty = bench default (fig_scan: bytes)
  EXPECT_EQ(d.scan_len, 0u);    // 0 = bench default
  const auto a = parse({"--key-domain=bytes", "--scan-len=64"});
  EXPECT_EQ(a.key_domain, "bytes");
  EXPECT_EQ(a.scan_len, 64u);
  EXPECT_EQ(parse({"--key-domain=u64"}).key_domain, "u64");
}

TEST(BenchArgsDeathTest, RejectsUnknownKeyDomain) {
  // Exact-literal matching: a typo'd domain must not fall back to u64 and
  // silently bench the wrong thing. Exit 2 with the usage line.
  EXPECT_EXIT(parse({"--key-domain=Bytes"}), ::testing::ExitedWithCode(2),
              "--key-domain=Bytes");
  EXPECT_EXIT(parse({"--key-domain=byte"}), ::testing::ExitedWithCode(2),
              "--key-domain=byte");
  EXPECT_EXIT(parse({"--key-domain=str"}), ::testing::ExitedWithCode(2),
              "--key-domain=str");
  EXPECT_EXIT(parse({"--key-domain="}), ::testing::ExitedWithCode(2),
              "--key-domain=");
}

TEST(BenchArgsDeathTest, RejectsDegenerateScanLen) {
  // scan-len=0 would make every scan a no-op (vacuously passing exit
  // checks); junk and absurd lengths are config bugs.
  EXPECT_EXIT(parse({"--scan-len=0"}), ::testing::ExitedWithCode(2),
              "--scan-len=0");
  EXPECT_EXIT(parse({"--scan-len=16k"}), ::testing::ExitedWithCode(2),
              "--scan-len=16k");
  EXPECT_EXIT(parse({"--scan-len=9999999"}), ::testing::ExitedWithCode(2),
              "--scan-len=9999999");
}

TEST(BenchArgsDeathTest, RejectsNonPositiveMetricsInterval) {
  // A zero window would divide the run into infinitely many windows; the
  // flag's documented "0 = off" spelling is *omitting* it, not passing 0.
  EXPECT_EXIT(parse({"--metrics-interval=0"}), ::testing::ExitedWithCode(2),
              "--metrics-interval=0");
  EXPECT_EXIT(parse({"--metrics-interval=1k"}), ::testing::ExitedWithCode(2),
              "--metrics-interval=1k");
}

TEST(FigCommon, SweepHelpers) {
  EXPECT_EQ(bench::thread_sweep(/*quick=*/true), (std::vector<int>{4, 16}));
  const auto full = bench::thread_sweep(/*quick=*/false);
  ASSERT_FALSE(full.empty());
  EXPECT_EQ(full.front(), 1);
  EXPECT_EQ(full.back(), 20);  // the paper testbed's core count
  for (std::size_t i = 1; i < full.size(); ++i) {
    EXPECT_LT(full[i - 1], full[i]);
  }

  EXPECT_EQ(bench::theta_sweep(/*quick=*/true).size(), 2u);
  const auto thetas = bench::theta_sweep(/*quick=*/false);
  ASSERT_FALSE(thetas.empty());
  EXPECT_EQ(thetas.front(), 0.0);
  EXPECT_EQ(thetas.back(), 0.99);

  // The default figure sweep is exactly the registry's figure_default set:
  // the paper's four trees plus the post-refactor Euno-SkipList and the two
  // alternative-design policies (RCU-HTM and the three-path template).
  const auto kinds = bench::figure_tree_kinds();
  std::size_t expected = 0;
  for (const auto& e : trees::tree_registry().entries()) {
    if (e.caps.figure_default) ++expected;
  }
  EXPECT_EQ(kinds.size(), expected);
  EXPECT_EQ(kinds.size(), 7u);
  EXPECT_NE(std::find(kinds.begin(), kinds.end(), trees::TreeKind::kEunoSkipList),
            kinds.end());
}

TEST(FigCommon, FigureSpecHonorsArgs) {
  auto args = parse({"--ops=77", "--keys=1024", "--seed=9"});
  const auto spec = bench::figure_spec(args);
  EXPECT_EQ(spec.ops_per_thread, 77u);
  EXPECT_EQ(spec.workload.key_range, 1024u);
  EXPECT_EQ(spec.workload.seed, 9u);
  EXPECT_EQ(spec.preload, 512u);
}

TEST(FigCommon, RunFigureSweepSequentialFallback) {
  // jobs=1 (the default) must be the plain sequential loop: identical to
  // calling run_sim_experiment per spec, in order.
  auto args = parse({});
  ASSERT_EQ(args.jobs, 1);

  auto spec = bench::figure_spec(args);
  spec.workload.key_range = 1 << 14;
  spec.preload = spec.workload.key_range / 2;
  spec.ops_per_thread = 200;
  spec.threads = 4;
  spec.machine.arena_bytes = 256ull << 20;

  std::vector<driver::ExperimentSpec> specs;
  for (auto kind :
       {driver::TreeKind::kHtmBPTree, driver::TreeKind::kEuno}) {
    spec.tree = kind;
    specs.push_back(spec);
  }

  const auto swept = bench::run_figure_sweep(specs, args);
  ASSERT_EQ(swept.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const auto direct = driver::run_sim_experiment(specs[i]);
    EXPECT_EQ(swept[i].sim_cycles, direct.sim_cycles);
    EXPECT_EQ(swept[i].ops, direct.ops);
    EXPECT_EQ(swept[i].aborts_total, direct.aborts_total);
    EXPECT_EQ(swept[i].mem_accesses, direct.mem_accesses);
  }
}

}  // namespace
}  // namespace euno
