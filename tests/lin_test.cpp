// Linearizability sweep: every tree kind under the schedule-exploration
// policies (deterministic, seeded-random preemption, preempt-on-tx-begin,
// abort-storm injection), histories checked by src/check. Plus determinism
// of replay (same spec => identical history) and a bounded systematic
// exploration on a tiny configuration.
#include <vector>

#include "check/harness.hpp"
#include "check/explore.hpp"
#include "repro_main.hpp"

namespace euno::tests {
namespace {

using check::LinKind;
using check::LinPattern;
using check::LinRun;
using check::LinSpec;
using sim::SchedulePolicy;

SchedulePolicy rand_policy(std::uint64_t seed, std::uint32_t preempt_pct = 100,
                           bool txp = false, std::uint32_t storm = 0) {
  SchedulePolicy p;
  p.mode = SchedulePolicy::Mode::kRandom;
  p.seed = seed;
  p.preempt_pct = preempt_pct;
  p.preempt_on_tx_begin = txp;
  p.abort_storm_pct = storm;
  return p;
}

std::vector<LinSpec> lin_params() {
  std::vector<LinSpec> specs;
  for (const LinKind kind : check::kAllLinKinds) {
    // Deterministic heap scheduler (the production interleaving).
    {
      LinSpec s;
      s.kind = kind;
      specs.push_back(s);
    }
    // Seeded random preemption at access granularity.
    {
      LinSpec s;
      s.kind = kind;
      s.sched = rand_policy(7);
      specs.push_back(s);
    }
    // Adversarial: deschedule every fiber right after tx begin, plus a
    // moderate random-preemption background.
    {
      LinSpec s;
      s.kind = kind;
      s.sched = rand_policy(11, 60, /*txp=*/true);
      specs.push_back(s);
    }
    // Abort-storm injection: 25% of transaction begins are doomed on the
    // spot, pushing every tree through its retry and fallback paths.
    {
      LinSpec s;
      s.kind = kind;
      s.sched = rand_policy(13, 40, /*txp=*/false, /*storm=*/25);
      specs.push_back(s);
    }
    // Split-race pattern: readers chase a writer that splits leaves.
    {
      LinSpec s;
      s.kind = kind;
      s.pattern = LinPattern::kSplitRace;
      s.preload = 12;
      s.ops_per_thread = 48;
      s.sched = rand_policy(17);
      specs.push_back(s);
    }
  }
  // Adaptive-enabled Euno variants (full() config: lockbits + adaptation).
  for (const LinKind kind : {LinKind::kEunoS2, LinKind::kEunoS4}) {
    LinSpec s;
    s.kind = kind;
    s.adaptive = true;
    s.sched = rand_policy(19, 80, /*txp=*/true);
    specs.push_back(s);
  }
  // Graceful degradation under an abort storm: the hardened policy with a
  // hair-trigger health monitor must flip each HTM-using tree to lock-only
  // mid-run without the history ceasing to linearize.
  for (const LinKind kind : {LinKind::kBaseline, LinKind::kHtmMasstree,
                             LinKind::kEunoS2, LinKind::kEunoS4,
                             LinKind::kEunoSkipList, LinKind::kRcuBptree}) {
    LinSpec s;
    s.kind = kind;
    s.degrade = true;
    s.sched = rand_policy(29, 50, /*txp=*/false, /*storm=*/60);
    specs.push_back(s);
  }
  // Three-path degrade chain: the same hair-trigger monitor drives the
  // policy's staged descent fast -> middle+slow -> terminal lock-only
  // mid-run (each stage flip counts one degradation; see the dedicated
  // chain test below for the stage assertions).
  for (const std::uint64_t seed : {29ull, 31ull}) {
    LinSpec s;
    s.kind = LinKind::kThreePath;
    s.degrade = true;
    s.sched = rand_policy(seed, 50, /*txp=*/false, /*storm=*/60);
    specs.push_back(s);
  }
  return specs;
}

class LinCheck : public ::testing::TestWithParam<LinSpec> {};

TEST_P(LinCheck, HistoryIsLinearizable) {
  const LinSpec& spec = GetParam();
  repro_extra() = "# replay: " + check::lin_repro_line(spec);
  const LinRun run = run_lin(spec);
  ASSERT_FALSE(run.history.empty());
  EXPECT_TRUE(run.check.complete)
      << "segment cap exceeded; checker result is partial";
  EXPECT_FALSE(run.truncated) << "scheduler hit the max_steps valve";
  std::string detail;
  for (const auto& v : run.check.violations) detail += describe_violation(v);
  EXPECT_TRUE(run.check.ok) << detail << check::lin_repro_line(spec);
  if (spec.degrade) {
    EXPECT_GE(run.degradations, 1u)
        << "degrade spec never tripped the HTM-health monitor";
  }
}

INSTANTIATE_TEST_SUITE_P(AllTrees, LinCheck, ::testing::ValuesIn(lin_params()),
                         [](const ::testing::TestParamInfo<LinSpec>& info) {
                           return info.param.name();
                         });

// Dedicated degrade-chain check: under a violent abort storm the three-path
// policy must walk the whole descent — fast disabled (stage 1), then the
// terminal lock-only mode (stage 2) — mid-run, with the history still
// linearizing across both flips. Each stage flip counts exactly one
// degradation, so the full chain shows as exactly two.
TEST(LinDegradeChain, ThreePathDescendsToTerminalLockOnly) {
  LinSpec spec;
  spec.kind = LinKind::kThreePath;
  spec.degrade = true;
  spec.ops_per_thread = 80;
  spec.sched = rand_policy(29, 50, /*txp=*/false, /*storm=*/60);
  repro_extra() = "# replay: " + check::lin_repro_line(spec);
  const LinRun run = run_lin(spec);
  std::string detail;
  for (const auto& v : run.check.violations) detail += describe_violation(v);
  EXPECT_TRUE(run.check.ok) << detail << check::lin_repro_line(spec);
  EXPECT_EQ(run.degradations, 2u)
      << "expected the full fast->middle->terminal descent";
}

TEST(LinDeterminism, SameSpecSameHistory) {
  LinSpec spec;
  spec.kind = LinKind::kEunoS4;
  spec.sched = rand_policy(23, 90, /*txp=*/true, /*storm=*/10);
  repro_extra() = "# replay: " + check::lin_repro_line(spec);
  const LinRun a = run_lin(spec);
  const LinRun b = run_lin(spec);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    const auto& x = a.history[i];
    const auto& y = b.history[i];
    ASSERT_EQ(x.inv, y.inv) << "event " << i;
    ASSERT_EQ(x.res, y.res) << "event " << i;
    ASSERT_EQ(x.op, y.op) << "event " << i;
    ASSERT_EQ(x.core, y.core) << "event " << i;
    ASSERT_EQ(x.key, y.key) << "event " << i;
    ASSERT_EQ(x.value, y.value) << "event " << i;
    ASSERT_EQ(x.found, y.found) << "event " << i;
    ASSERT_EQ(x.scan_out, y.scan_out) << "event " << i;
  }
}

TEST(LinDeterminism, SpecStringRoundTrips) {
  LinSpec spec;
  spec.kind = LinKind::kHtmMasstree;
  spec.adaptive = false;
  spec.degrade = true;
  spec.pattern = LinPattern::kSplitRace;
  spec.threads = 2;
  spec.ops_per_thread = 9;
  spec.workload_seed = 99;
  spec.sched = rand_policy(5, 33, true, 7);
  const auto parsed = LinSpec::parse(spec.to_string());
  ASSERT_TRUE(parsed.has_value()) << spec.to_string();
  EXPECT_EQ(parsed->to_string(), spec.to_string());
}

// Bounded systematic exploration of a tiny configuration: 2 fibers, a few
// ops on one hot key pair. Every explored interleaving must linearize, and
// the explorer must actually deviate from the default schedule.
TEST(LinExplore, SystematicTinyConfigAllSchedulesLinearize) {
  LinSpec spec;
  spec.kind = LinKind::kEunoS2;
  spec.threads = 2;
  spec.ops_per_thread = 3;
  spec.key_range = 2;
  spec.preload = 1;
  spec.sched.mode = SchedulePolicy::Mode::kSystematic;
  spec.sched.max_steps = 200000;
  repro_extra() = "# replay: " + check::lin_repro_line(spec);

  check::ExploreOptions eo;
  eo.max_preemptions = 1;
  eo.max_schedules = 48;
  check::ScheduleExplorer explorer(eo);
  std::uint64_t runs = 0;
  std::uint64_t deviating_runs = 0;
  while (auto prefix = explorer.next()) {
    LinSpec s = spec;
    s.sched.choices = *prefix;
    if (!prefix->empty()) ++deviating_runs;
    const LinRun run = run_lin(s);
    std::string detail;
    for (const auto& v : run.check.violations) detail += describe_violation(v);
    ASSERT_TRUE(run.check.ok)
        << detail << "choices prefix len " << prefix->size() << "\n"
        << check::lin_repro_line(s);
    EXPECT_FALSE(run.truncated);
    explorer.report(run.decisions);
    ++runs;
  }
  EXPECT_EQ(runs, explorer.schedules_started());
  EXPECT_GE(runs, 2u) << "explorer never left the default schedule";
  EXPECT_GE(deviating_runs, 1u);
}

}  // namespace
}  // namespace euno::tests

EUNO_TEST_MAIN_WITH_REPRO()
