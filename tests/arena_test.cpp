// SharedArena size-class boundary tests.
//
// The class map is 64-byte-granular up to 2 KiB and power-of-two above, up
// to 128 MiB; allocations charge the full class size. The tests pin the
// exact edges (64 B, 2 KiB, 2 KiB + 64, 128 MiB) and the round-trip
// invariant class_of(bytes_of(c)) == c for every class — the latter is what
// caught an off-by-one that pushed every above-linear allocation one class
// (2x) too high and made 128 MiB unrepresentable.
#include <gtest/gtest.h>

#include "sim/arena.hpp"
#include "sim/line.hpp"

namespace euno::sim {
namespace {

TEST(ArenaSizeClass, LinearRegionEdges) {
  EXPECT_EQ(SharedArena::size_class_of(64), 0);
  EXPECT_EQ(SharedArena::class_bytes(0), 64u);
  EXPECT_EQ(SharedArena::size_class_of(128), 1);
  EXPECT_EQ(SharedArena::size_class_of(2048 - 64), SharedArena::kLinearClasses - 2);
  EXPECT_EQ(SharedArena::size_class_of(2048), SharedArena::kLinearClasses - 1);
  EXPECT_EQ(SharedArena::class_bytes(SharedArena::kLinearClasses - 1), 2048u);
}

TEST(ArenaSizeClass, PowerOfTwoRegionEdges) {
  // First size above the linear region lands in the first pow2 class (4 KiB).
  EXPECT_EQ(SharedArena::size_class_of(2048 + 64), SharedArena::kLinearClasses);
  EXPECT_EQ(SharedArena::class_bytes(SharedArena::kLinearClasses), 4096u);
  EXPECT_EQ(SharedArena::size_class_of(4096), SharedArena::kLinearClasses);
  EXPECT_EQ(SharedArena::size_class_of(4096 + 64), SharedArena::kLinearClasses + 1);
  EXPECT_EQ(SharedArena::class_bytes(SharedArena::kLinearClasses + 1), 8192u);
  // The documented ceiling: 128 MiB maps to the last class exactly.
  EXPECT_EQ(SharedArena::size_class_of(128ull << 20),
            SharedArena::kNumSizeClasses - 1);
  EXPECT_EQ(SharedArena::class_bytes(SharedArena::kNumSizeClasses - 1),
            128ull << 20);
}

TEST(ArenaSizeClass, RoundTripEveryClass) {
  for (int cls = 0; cls < SharedArena::kNumSizeClasses; ++cls) {
    const std::size_t bytes = SharedArena::class_bytes(cls);
    EXPECT_EQ(SharedArena::size_class_of(bytes), cls) << "bytes=" << bytes;
    // The class size is also the largest size mapping to the class: one more
    // cache line spills into the next class.
    if (cls + 1 < SharedArena::kNumSizeClasses) {
      EXPECT_EQ(SharedArena::size_class_of(bytes + 64), cls + 1)
          << "bytes=" << bytes;
    }
  }
}

TEST(ArenaSizeClass, ClassSizesStrictlyIncrease) {
  for (int cls = 1; cls < SharedArena::kNumSizeClasses; ++cls) {
    EXPECT_GT(SharedArena::class_bytes(cls), SharedArena::class_bytes(cls - 1));
  }
}

TEST(ArenaAlloc, ChargesFullClassAndRecycles) {
  SharedArena arena(16ull << 20);
  // 100 B rounds to 128 B (class 1): in_use charges the class size.
  void* a = arena.alloc(100, MemClass::kTreeMisc, LineKind::kOther);
  EXPECT_EQ(arena.bytes_in_use(), 128u);
  // 3000 B rounds to 3008 B -> first pow2 class (4 KiB).
  void* b = arena.alloc(3000, MemClass::kTreeMisc, LineKind::kOther);
  EXPECT_EQ(arena.bytes_in_use(), 128u + 4096u);
  arena.free(b, 3000, MemClass::kTreeMisc);
  EXPECT_EQ(arena.bytes_in_use(), 128u);
  // Same class again: the free list must hand the block back, not bump.
  const std::uint64_t high = arena.high_water();
  void* b2 = arena.alloc(2500, MemClass::kTreeMisc, LineKind::kOther);
  EXPECT_EQ(b2, b);
  EXPECT_EQ(arena.high_water(), high);
  arena.free(b2, 2500, MemClass::kTreeMisc);
  arena.free(a, 100, MemClass::kTreeMisc);
  EXPECT_EQ(arena.bytes_in_use(), 0u);
}

TEST(ArenaAlloc, LargeClassAllocationWorks) {
  SharedArena arena(64ull << 20);
  // A multi-MiB allocation must be representable (the old off-by-one made
  // anything needing the last class trip the class-count assert).
  void* p = arena.alloc(3ull << 20, MemClass::kTreeMisc, LineKind::kOther);
  EXPECT_NE(p, nullptr);
  EXPECT_EQ(arena.bytes_in_use(), 4ull << 20);  // rounded up to 4 MiB class
  arena.free(p, 3ull << 20, MemClass::kTreeMisc);
  EXPECT_EQ(arena.bytes_in_use(), 0u);
}

}  // namespace
}  // namespace euno::sim
