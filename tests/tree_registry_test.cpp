// Registry contract tests: lookup round trips, uniqueness of the CLI and
// manifest surfaces, capability expectations for the built-ins, and factory
// presence over both contexts.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "trees/registry.hpp"

namespace euno::tests {
namespace {

using trees::TreeKind;
using trees::tree_registry;

TEST(TreeRegistry, NameKindRoundTrip) {
  for (const auto& e : tree_registry().entries()) {
    const auto* by_name = tree_registry().by_name(e.name);
    ASSERT_NE(by_name, nullptr) << e.name;
    EXPECT_EQ(by_name->kind, e.kind) << e.name;
    const auto* by_kind = tree_registry().by_kind(e.kind);
    ASSERT_NE(by_kind, nullptr) << e.name;
    EXPECT_EQ(by_kind->name, e.name);
    EXPECT_EQ(&tree_registry().expect(e.kind), by_kind);
  }
}

TEST(TreeRegistry, UnknownNameIsNull) {
  EXPECT_EQ(tree_registry().by_name("no-such-tree"), nullptr);
  EXPECT_EQ(tree_registry().by_name(""), nullptr);
  EXPECT_EQ(tree_registry().by_name("Euno-B+Tree"), nullptr)
      << "display names are not CLI slugs";
}

TEST(TreeRegistry, SlugsAndDisplayNamesAreUnique) {
  std::set<std::string> names;
  std::set<std::string> displays;
  for (const auto& e : tree_registry().entries()) {
    EXPECT_TRUE(names.insert(e.name).second) << "duplicate slug " << e.name;
    EXPECT_TRUE(displays.insert(e.display).second)
        << "duplicate display name " << e.display;
  }
}

TEST(TreeRegistry, EveryEntryHasBothFactories) {
  for (const auto& e : tree_registry().entries()) {
    EXPECT_NE(e.make_sim, nullptr) << e.name;
    EXPECT_NE(e.make_native, nullptr) << e.name;
  }
}

TEST(TreeRegistry, StrFactoriesIffBytesDomain) {
  // The string factories and the bytes capability travel together: a kBytes
  // entry without them would crash the driver's bytes dispatch, and a kU64
  // entry with them would advertise a surface the trait layer can't serve.
  std::size_t bytes_entries = 0;
  for (const auto& e : tree_registry().entries()) {
    const bool is_bytes = e.caps.key_domain == trees::KeyDomain::kBytes;
    EXPECT_EQ(e.make_sim_str != nullptr, is_bytes) << e.name;
    EXPECT_EQ(e.make_native_str != nullptr, is_bytes) << e.name;
    if (is_bytes) {
      ++bytes_entries;
      // Codec-wrapped str trees are swept by the conformance battery but
      // stay out of the u64 figure sweeps, the ablation ladder and the
      // u64-kind lin harness enum (they have their own LinKinds).
      EXPECT_FALSE(e.caps.figure_default) << e.name;
      EXPECT_FALSE(e.caps.ablation_rung) << e.name;
      EXPECT_FALSE(e.caps.lin) << e.name;
      EXPECT_EQ(e.name.rfind("str-", 0), 0u)
          << e.name << ": bytes-domain slugs carry the str- prefix";
      EXPECT_EQ(e.display.rfind("Str-", 0), 0u) << e.display;
    }
  }
  EXPECT_GE(bytes_entries, 2u)
      << "acceptance floor: at least two bytes-domain trees registered";

  const auto* str_htm = tree_registry().by_name("str-htm-bptree");
  ASSERT_NE(str_htm, nullptr);
  EXPECT_TRUE(str_htm->caps.uses_htm);
  EXPECT_EQ(str_htm->display, "Str-HTM-B+Tree");

  const auto* str_mass = tree_registry().by_name("str-masstree");
  ASSERT_NE(str_mass, nullptr);
  EXPECT_FALSE(str_mass->caps.uses_htm);
  EXPECT_FALSE(str_mass->caps.has_global_fallback);

  const auto* str_lock = tree_registry().by_name("str-lock-bptree");
  ASSERT_NE(str_lock, nullptr);
  EXPECT_FALSE(str_lock->caps.uses_htm);
  EXPECT_FALSE(str_lock->caps.has_global_fallback);
}

TEST(TreeRegistry, BuiltinsPresentWithExpectedCaps) {
  // The paper's four figure trees plus the post-refactor Euno-SkipList,
  // RCU-HTM-B+Tree and 3Path-B+Tree.
  std::size_t figure = 0;
  for (const auto& e : tree_registry().entries()) {
    if (e.caps.figure_default) ++figure;
  }
  EXPECT_EQ(figure, 7u);

  const auto* euno = tree_registry().by_name("euno");
  ASSERT_NE(euno, nullptr);
  EXPECT_TRUE(euno->caps.figure_default);
  EXPECT_TRUE(euno->caps.partitioned_leaves);
  EXPECT_EQ(euno->display, "Euno-B+Tree");

  const auto* skiplist = tree_registry().by_name("euno-skiplist");
  ASSERT_NE(skiplist, nullptr);
  EXPECT_EQ(skiplist->kind, TreeKind::kEunoSkipList);
  EXPECT_TRUE(skiplist->caps.figure_default);
  EXPECT_TRUE(skiplist->caps.partitioned_leaves);
  EXPECT_TRUE(skiplist->caps.uses_htm);
  EXPECT_EQ(skiplist->display, "Euno-SkipList");

  const auto* lock = tree_registry().by_name("lock-bptree");
  ASSERT_NE(lock, nullptr);
  EXPECT_EQ(lock->kind, TreeKind::kLockBPTree);
  EXPECT_FALSE(lock->caps.figure_default);
  EXPECT_FALSE(lock->caps.uses_htm);

  const auto* masstree = tree_registry().by_name("masstree");
  ASSERT_NE(masstree, nullptr);
  EXPECT_FALSE(masstree->caps.uses_htm);
  EXPECT_FALSE(masstree->caps.has_global_fallback)
      << "plain OLC never takes the global fallback lock";

  const auto* rcu = tree_registry().by_name("rcu-bptree");
  ASSERT_NE(rcu, nullptr);
  EXPECT_EQ(rcu->kind, TreeKind::kRcuBPTree);
  EXPECT_TRUE(rcu->caps.figure_default);
  EXPECT_TRUE(rcu->caps.uses_htm);
  EXPECT_TRUE(rcu->caps.has_global_fallback)
      << "the splice transaction subscribes the per-tree fallback lock";
  EXPECT_EQ(rcu->display, "RCU-HTM-B+Tree");

  const auto* threepath = tree_registry().by_name("3path-bptree");
  ASSERT_NE(threepath, nullptr);
  EXPECT_EQ(threepath->kind, TreeKind::kThreePathBPTree);
  EXPECT_TRUE(threepath->caps.figure_default);
  EXPECT_TRUE(threepath->caps.uses_htm);
  EXPECT_FALSE(threepath->caps.has_global_fallback)
      << "three-path degrades fast->middle->slow; the lock is terminal only";
  EXPECT_EQ(threepath->display, "3Path-B+Tree");

  EXPECT_FALSE(lock->caps.has_global_fallback);

  // Figure 13 ladder: exactly the five cumulative rungs plus the baseline.
  std::size_t rungs = 0;
  for (const auto& e : tree_registry().entries()) {
    if (e.caps.ablation_rung) ++rungs;
  }
  EXPECT_EQ(rungs, 6u);
}

TEST(TreeRegistry, RegistrationOrderStartsWithTheOriginalNine) {
  // Listings, default sweeps and the golden fixtures depend on the original
  // entries keeping their positions; post-refactor structures append.
  const auto& entries = tree_registry().entries();
  ASSERT_GE(entries.size(), 9u);
  const char* expected[] = {"htm-bptree",    "masstree",      "htm-masstree",
                            "euno",          "euno-split",    "euno-part",
                            "euno-lockbits", "euno-markbits", "euno-adaptive"};
  for (std::size_t i = 0; i < 9; ++i) {
    EXPECT_EQ(entries[i].name, expected[i]) << "position " << i;
  }
}

}  // namespace
}  // namespace euno::tests
