// Checker self-test: a deliberately broken tree MUST be flagged.
//
// This translation unit is compiled with EUNO_LIN_MUTATION_SKIP_SEQ_RECHECK
// (see tests/CMakeLists.txt), which makes EunoBPTree's get path skip the
// leaf-seqno re-validation — the exact defense against reading a leaf that
// split underneath the lookup. The harness header instantiates the mutated
// tree inside this TU only (the euno_check library contains no tree code),
// so no other binary ever links the broken variant.
//
// Under the split-race pattern a reader's get then occasionally misses a
// preloaded key that was never erased: a linearizability violation the
// checker must report, with a seed+schedule that replays it exactly.
#include "check/harness.hpp"
#include "repro_main.hpp"

#ifndef EUNO_LIN_MUTATION_SKIP_SEQ_RECHECK
#error "lin_mutation_test must be compiled with EUNO_LIN_MUTATION_SKIP_SEQ_RECHECK"
#endif

namespace euno::tests {
namespace {

using check::LinKind;
using check::LinPattern;
using check::LinRun;
using check::LinSpec;

LinSpec mutation_spec(std::uint64_t sched_seed) {
  LinSpec spec;
  spec.kind = LinKind::kEunoS4;  // markbit config: both mutated sites active
  spec.pattern = LinPattern::kSplitRace;
  // 1 writer + 3 readers, with preloaded even keys spread across the whole
  // insert range so nearly every split moves keys the readers are chasing.
  // Splits keep the left leaf's marks as a conservative superset, so a
  // reader's get on a moved-out key reaches the lower transaction — whose
  // skipped seqno re-check is exactly the seeded bug.
  spec.threads = 4;
  spec.ops_per_thread = 120;
  spec.preload = 40;
  spec.workload_seed = 5;
  spec.sched.mode = sim::SchedulePolicy::Mode::kRandom;
  spec.sched.seed = sched_seed;
  spec.sched.preempt_pct = 100;
  return spec;
}

TEST(LinMutation, BrokenSeqRecheckIsFlaggedAndReplayable) {
  // Sweep schedule seeds until the race window is actually hit — the
  // mutation only misbehaves when a split lands inside a lookup.
  std::optional<LinSpec> violating;
  for (std::uint64_t seed = 1; seed <= 60 && !violating; ++seed) {
    const LinSpec spec = mutation_spec(seed);
    const LinRun run = run_lin(spec);
    if (!run.check.ok) violating = spec;
  }
  ASSERT_TRUE(violating.has_value())
      << "no schedule seed in 1..60 exposed the seeded mutation — the "
         "checker or the adversarial scheduler lost its teeth";
  repro_extra() = "# replay: " + check::lin_repro_line(*violating);

  // The counterexample must replay deterministically: same spec, same
  // violation, twice.
  const LinRun a = run_lin(*violating);
  const LinRun b = run_lin(*violating);
  ASSERT_FALSE(a.check.ok) << "replay lost the violation";
  ASSERT_FALSE(b.check.ok) << "second replay lost the violation";
  ASSERT_FALSE(a.check.violations.empty());
  ASSERT_EQ(a.check.violations.size(), b.check.violations.size());
  EXPECT_EQ(a.check.violations[0].key, b.check.violations[0].key);
  EXPECT_EQ(a.check.violations[0].segment_index,
            b.check.violations[0].segment_index);

  // The violation is a vanished preloaded key: preloads are even keys that
  // are never erased, and the shrunk core names the impossible read.
  const auto& v = a.check.violations[0];
  EXPECT_EQ(v.key % 2, 0u) << "expected a preloaded (even) key";
  EXPECT_FALSE(v.core.empty());
  const std::string text = check::describe_violation(v);
  EXPECT_NE(text.find("violation on key"), std::string::npos);

  // And the printed spec string round-trips for the --replay flow.
  const auto parsed = LinSpec::parse(violating->to_string());
  ASSERT_TRUE(parsed.has_value());
  const LinRun c = run_lin(*parsed);
  EXPECT_FALSE(c.check.ok) << "parsed replay spec lost the violation";
}

// The mutation must not fire on the deterministic scheduler's serial-ish
// interleavings *every* time — but whatever it produces, the checker result
// itself must stay deterministic for a fixed spec.
TEST(LinMutation, CheckerVerdictIsDeterministicPerSpec) {
  const LinSpec spec = mutation_spec(3);
  const LinRun a = run_lin(spec);
  const LinRun b = run_lin(spec);
  EXPECT_EQ(a.check.ok, b.check.ok);
  EXPECT_EQ(a.check.violations.size(), b.check.violations.size());
  EXPECT_EQ(a.history.size(), b.history.size());
}

}  // namespace
}  // namespace euno::tests

EUNO_TEST_MAIN_WITH_REPRO()
