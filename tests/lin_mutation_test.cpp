// Checker self-test: a deliberately broken tree MUST be flagged.
//
// This translation unit is compiled with three seeded-bug defines (see
// tests/CMakeLists.txt), each knocking out one tree policy's load-bearing
// correctness mechanism:
//
//  - EUNO_LIN_MUTATION_SKIP_SEQ_RECHECK: EunoBPTree's get path skips the
//    leaf-seqno re-validation — the exact defense against reading a leaf
//    that split underneath the lookup.
//  - EUNO_LIN_MUTATION_SKIP_EDGE_VALIDATION: RCU-HTM's splice transaction
//    installs its private copy without re-checking the recorded edge set,
//    so a racing splice is silently overwritten (lost updates) and the
//    original is retired twice.
//  - EUNO_LIN_MUTATION_SKIP_MIDDLE_BUMP: the three-path policy's middle
//    path commits without bumping node versions, breaking its handshake
//    with concurrent slow-path validation (torn/stale reads).
//
// Each mutation affects a disjoint tree type, so one TU carries all three.
// The harness header instantiates the mutated trees inside this TU only
// (the euno_check library contains no tree code), so no other binary ever
// links a broken variant. Every test must find a schedule where the seeded
// bug produces a linearizability violation, and that counterexample must
// replay deterministically from its printed spec string.
#include "check/harness.hpp"
#include "repro_main.hpp"

#ifndef EUNO_LIN_MUTATION_SKIP_SEQ_RECHECK
#error "lin_mutation_test must be compiled with EUNO_LIN_MUTATION_SKIP_SEQ_RECHECK"
#endif
#ifndef EUNO_LIN_MUTATION_SKIP_EDGE_VALIDATION
#error "lin_mutation_test must be compiled with EUNO_LIN_MUTATION_SKIP_EDGE_VALIDATION"
#endif
#ifndef EUNO_LIN_MUTATION_SKIP_MIDDLE_BUMP
#error "lin_mutation_test must be compiled with EUNO_LIN_MUTATION_SKIP_MIDDLE_BUMP"
#endif

namespace euno::tests {
namespace {

using check::LinKind;
using check::LinPattern;
using check::LinRun;
using check::LinSpec;

// Sweep schedule seeds until the mutation's race window is actually hit,
// then prove the counterexample replays: same spec => same violation, and
// the printed spec string round-trips through LinSpec::parse for --replay.
LinSpec find_violating_spec(LinSpec (*make_spec)(std::uint64_t)) {
  std::optional<LinSpec> violating;
  for (std::uint64_t seed = 1; seed <= 60 && !violating; ++seed) {
    const LinSpec spec = make_spec(seed);
    const LinRun run = run_lin(spec);
    if (!run.check.ok) violating = spec;
  }
  EXPECT_TRUE(violating.has_value())
      << "no schedule seed in 1..60 exposed the seeded mutation — the "
         "checker or the adversarial scheduler lost its teeth";
  if (!violating) return make_spec(1);
  repro_extra() = "# replay: " + check::lin_repro_line(*violating);
  return *violating;
}

void expect_deterministic_replay(const LinSpec& spec) {
  const LinRun a = run_lin(spec);
  const LinRun b = run_lin(spec);
  ASSERT_FALSE(a.check.ok) << "replay lost the violation";
  ASSERT_FALSE(b.check.ok) << "second replay lost the violation";
  ASSERT_FALSE(a.check.violations.empty());
  ASSERT_EQ(a.check.violations.size(), b.check.violations.size());
  EXPECT_EQ(a.check.violations[0].key, b.check.violations[0].key);
  EXPECT_EQ(a.check.violations[0].segment_index,
            b.check.violations[0].segment_index);
  const auto parsed = LinSpec::parse(spec.to_string());
  ASSERT_TRUE(parsed.has_value());
  const LinRun c = run_lin(*parsed);
  EXPECT_FALSE(c.check.ok) << "parsed replay spec lost the violation";
}

LinSpec mutation_spec(std::uint64_t sched_seed) {
  LinSpec spec;
  spec.kind = LinKind::kEunoS4;  // markbit config: both mutated sites active
  spec.pattern = LinPattern::kSplitRace;
  // 1 writer + 3 readers, with preloaded even keys spread across the whole
  // insert range so nearly every split moves keys the readers are chasing.
  // Splits keep the left leaf's marks as a conservative superset, so a
  // reader's get on a moved-out key reaches the lower transaction — whose
  // skipped seqno re-check is exactly the seeded bug.
  spec.threads = 4;
  spec.ops_per_thread = 120;
  spec.preload = 40;
  spec.workload_seed = 5;
  spec.sched.mode = sim::SchedulePolicy::Mode::kRandom;
  spec.sched.seed = sched_seed;
  spec.sched.preempt_pct = 100;
  return spec;
}

TEST(LinMutation, BrokenSeqRecheckIsFlaggedAndReplayable) {
  // Sweep schedule seeds until the race window is actually hit — the
  // mutation only misbehaves when a split lands inside a lookup.
  std::optional<LinSpec> violating;
  for (std::uint64_t seed = 1; seed <= 60 && !violating; ++seed) {
    const LinSpec spec = mutation_spec(seed);
    const LinRun run = run_lin(spec);
    if (!run.check.ok) violating = spec;
  }
  ASSERT_TRUE(violating.has_value())
      << "no schedule seed in 1..60 exposed the seeded mutation — the "
         "checker or the adversarial scheduler lost its teeth";
  repro_extra() = "# replay: " + check::lin_repro_line(*violating);

  // The counterexample must replay deterministically: same spec, same
  // violation, twice.
  const LinRun a = run_lin(*violating);
  const LinRun b = run_lin(*violating);
  ASSERT_FALSE(a.check.ok) << "replay lost the violation";
  ASSERT_FALSE(b.check.ok) << "second replay lost the violation";
  ASSERT_FALSE(a.check.violations.empty());
  ASSERT_EQ(a.check.violations.size(), b.check.violations.size());
  EXPECT_EQ(a.check.violations[0].key, b.check.violations[0].key);
  EXPECT_EQ(a.check.violations[0].segment_index,
            b.check.violations[0].segment_index);

  // The violation is a vanished preloaded key: preloads are even keys that
  // are never erased, and the shrunk core names the impossible read.
  const auto& v = a.check.violations[0];
  EXPECT_EQ(v.key % 2, 0u) << "expected a preloaded (even) key";
  EXPECT_FALSE(v.core.empty());
  const std::string text = check::describe_violation(v);
  EXPECT_NE(text.find("violation on key"), std::string::npos);

  // And the printed spec string round-trips for the --replay flow.
  const auto parsed = LinSpec::parse(violating->to_string());
  ASSERT_TRUE(parsed.has_value());
  const LinRun c = run_lin(*parsed);
  EXPECT_FALSE(c.check.ok) << "parsed replay spec lost the violation";
}

// RCU-HTM with edge validation knocked out: two updaters whose windows
// overlap both build private copies from the same snapshot and both splice;
// the second install silently discards the first (a lost update), and the
// doubly-retired original pollutes the arena free list. A small key range
// keeps the contending puts inside the same few leaves so racing splices
// are common; 100% preemption makes the clone/splice window wide.
LinSpec rcu_mutation_spec(std::uint64_t sched_seed) {
  LinSpec spec;
  spec.kind = LinKind::kRcuBptree;
  spec.threads = 4;
  spec.ops_per_thread = 80;
  spec.key_range = 24;
  spec.preload = 12;
  spec.workload_seed = 5;
  spec.sched.mode = sim::SchedulePolicy::Mode::kRandom;
  spec.sched.seed = sched_seed;
  spec.sched.preempt_pct = 100;
  return spec;
}

TEST(LinMutation, BrokenRcuEdgeValidationIsFlaggedAndReplayable) {
  const LinSpec spec = find_violating_spec(&rcu_mutation_spec);
  if (HasFailure()) return;
  expect_deterministic_replay(spec);
}

// Three-path with the middle-path version bump knocked out: middle-path
// HTM commits mutate nodes without touching their versions, so concurrent
// slow-path optimistic validation passes on data that changed under it —
// torn or stale reads the checker must flag. The abort storm dooms enough
// fast/middle transactions to force a dense middle-commit / slow-OLC mix
// (both run at stage 0, so no degradation is needed — and the hair-trigger
// degrade monitor would actually hide the bug by rushing to the terminal
// lock-only stage, where the mutation is inert). The small key range keeps
// the mix on the same few leaves; 100% preemption holds slow-path
// read/validate windows open across middle commits.
LinSpec three_path_mutation_spec(std::uint64_t sched_seed) {
  LinSpec spec;
  spec.kind = LinKind::kThreePath;
  spec.threads = 4;
  spec.ops_per_thread = 100;
  spec.key_range = 24;
  spec.preload = 12;
  spec.workload_seed = 5;
  spec.sched.mode = sim::SchedulePolicy::Mode::kRandom;
  spec.sched.seed = sched_seed;
  spec.sched.preempt_pct = 100;
  spec.sched.abort_storm_pct = 50;
  return spec;
}

TEST(LinMutation, BrokenMiddlePathBumpIsFlaggedAndReplayable) {
  const LinSpec spec = find_violating_spec(&three_path_mutation_spec);
  if (HasFailure()) return;
  expect_deterministic_replay(spec);
}

// The mutation must not fire on the deterministic scheduler's serial-ish
// interleavings *every* time — but whatever it produces, the checker result
// itself must stay deterministic for a fixed spec.
TEST(LinMutation, CheckerVerdictIsDeterministicPerSpec) {
  const LinSpec spec = mutation_spec(3);
  const LinRun a = run_lin(spec);
  const LinRun b = run_lin(spec);
  EXPECT_EQ(a.check.ok, b.check.ok);
  EXPECT_EQ(a.check.violations.size(), b.check.violations.size());
  EXPECT_EQ(a.history.size(), b.history.size());
}

}  // namespace
}  // namespace euno::tests

EUNO_TEST_MAIN_WITH_REPRO()
