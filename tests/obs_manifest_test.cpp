// Tests for the JSON run-manifest emitter and the observability zero-cost
// guarantee: manifests are byte-deterministic across runs, and turning every
// obs channel on must not move a single simulated quantity.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "driver/experiment.hpp"
#include "obs/manifest.hpp"

namespace euno::obs {
namespace {

driver::ExperimentSpec small_spec() {
  driver::ExperimentSpec spec;
  spec.tree = driver::TreeKind::kEuno;
  spec.threads = 4;
  spec.ops_per_thread = 120;
  spec.workload.key_range = 1 << 12;
  spec.workload.dist_param = 0.9;
  spec.workload.scramble = false;
  spec.preload = 1 << 11;
  spec.machine.arena_bytes = 64ull << 20;
  return spec;
}

std::string read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  if (f == nullptr) return {};
  std::string out;
  char buf[65536];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

std::string write_manifest_for(const std::string& path,
                               const driver::ExperimentSpec& spec) {
  const auto r = driver::run_sim_experiment(spec);
  const bool ok = write_manifest(path, "obs_manifest_test", &spec, &r, 1);
  EXPECT_TRUE(ok);
  return read_file(path);
}

TEST(Manifest, TwoRunsAreByteIdentical) {
  auto spec = small_spec();
  spec.obs.latency = true;
  spec.obs.contention = true;
  const std::string p1 = ::testing::TempDir() + "/euno_manifest_a.json";
  const std::string p2 = ::testing::TempDir() + "/euno_manifest_b.json";
  const std::string a = write_manifest_for(p1, spec);
  const std::string b = write_manifest_for(p2, spec);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b) << "manifest is not deterministic";
  std::remove(p1.c_str());
  std::remove(p2.c_str());
}

TEST(Manifest, ContainsSchemaSpecAndResultKeys) {
  auto spec = small_spec();
  spec.obs.latency = true;
  spec.obs.contention = true;
  const std::string path = ::testing::TempDir() + "/euno_manifest_keys.json";
  const std::string doc = write_manifest_for(path, spec);
  for (const char* key :
       {"\"schema\":\"euno.run_manifest.v1\"", "\"bench\":\"obs_manifest_test\"",
        "\"sweep\"", "\"spec\"", "\"result\"", "\"tree\":\"Euno-B+Tree\"",
        "\"workload\"", "\"mix\"", "\"policy\"", "\"machine\"",
        "\"throughput_mops\"", "\"aborts_total\"", "\"latency_cycles\"",
        "\"abort_wasted_cycles\"", "\"p50\"", "\"p999\"", "\"buckets\"",
        "\"hot_lines\"", "\"lat_p99\""}) {
    EXPECT_NE(doc.find(key), std::string::npos) << "missing " << key;
  }
  std::remove(path.c_str());
}

TEST(Manifest, HistogramPopulatedWhenLatencyOn) {
  auto spec = small_spec();
  spec.obs.latency = true;
  const auto r = driver::run_sim_experiment(spec);
  EXPECT_EQ(r.op_latency.count(),
            static_cast<std::uint64_t>(spec.threads) * spec.ops_per_thread);
  EXPECT_GT(r.lat_p50, 0.0);
  EXPECT_GE(r.lat_p99, r.lat_p50);
  EXPECT_GE(r.lat_p999, r.lat_p99);
  EXPECT_GE(r.lat_p90, r.lat_p50);
}

TEST(Manifest, HotLinesPopulatedWhenContentionOnUnderConflict) {
  auto spec = small_spec();
  spec.tree = driver::TreeKind::kHtmBPTree;  // the collapsing baseline
  spec.threads = 8;
  spec.obs.contention = true;
  const auto r = driver::run_sim_experiment(spec);
  ASSERT_GT(r.aborts_conflict, 0u) << "test needs conflicts to attribute";
  ASSERT_FALSE(r.hot_lines.empty());
  // Sorted by aborts descending; labels resolve through the node registry.
  for (std::size_t i = 1; i < r.hot_lines.size(); ++i) {
    EXPECT_GE(r.hot_lines[i - 1].aborts, r.hot_lines[i].aborts);
  }
  bool any_node = false;
  for (const auto& hl : r.hot_lines) {
    EXPECT_FALSE(hl.kind.empty());
    EXPECT_GT(hl.aborts, 0u);
    if (hl.node_level != kNoLevel) any_node = true;
  }
  EXPECT_TRUE(any_node) << "no hot line resolved to a registered tree node";
}

// The core guarantee the whole subsystem rests on: observability charges
// zero simulated cycles, so every simulated quantity is bit-identical with
// all channels on vs. all off.
TEST(Manifest, ObservabilityDoesNotPerturbSimulation) {
  for (auto tree :
       {driver::TreeKind::kEuno, driver::TreeKind::kHtmBPTree}) {
    auto off = small_spec();
    off.tree = tree;
    auto on = off;
    on.obs.latency = true;
    on.obs.contention = true;
    on.obs.trace = true;
    const auto r_off = driver::run_sim_experiment(off);
    const auto r_on = driver::run_sim_experiment(on);
    EXPECT_EQ(r_off.sim_cycles, r_on.sim_cycles);
    EXPECT_EQ(r_off.aborts_total, r_on.aborts_total);
    EXPECT_EQ(r_off.attempts, r_on.attempts);
    EXPECT_EQ(r_off.commits, r_on.commits);
    EXPECT_EQ(r_off.fallbacks, r_on.fallbacks);
    EXPECT_EQ(r_off.mem_accesses, r_on.mem_accesses);
    EXPECT_EQ(r_off.mem_total, r_on.mem_total);
  }
}

}  // namespace
}  // namespace euno::obs
