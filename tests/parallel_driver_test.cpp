// Determinism regression for the parallel sweep runner: running a spec list
// through run_sim_experiments must produce bit-identical results whether the
// experiments run sequentially (jobs=1), sequentially again (simulation is a
// pure function of its spec), or fanned across OS threads (jobs=4). Any
// leaked process-global mutable state in src/sim/ or src/htm/ shows up here
// as a cross-run or cross-thread diff.
#include <gtest/gtest.h>

#include <vector>

#include "driver/experiment.hpp"
#include "driver/parallel.hpp"

namespace euno::driver {
namespace {

std::vector<ExperimentSpec> small_sweep() {
  ExperimentSpec base;
  base.workload.key_range = 1 << 14;
  base.workload.dist = workload::DistKind::kZipfian;
  base.workload.scramble = false;
  base.workload.seed = 42;
  base.preload = base.workload.key_range / 2;
  base.preload_stride = 2;
  base.ops_per_thread = 300;
  base.machine.arena_bytes = 256ull << 20;

  std::vector<ExperimentSpec> specs;
  for (double theta : {0.2, 0.9}) {
    base.workload.dist_param = theta;
    for (int threads : {4, 16}) {
      base.threads = threads;
      for (auto kind : {TreeKind::kHtmBPTree, TreeKind::kEuno}) {
        base.tree = kind;
        specs.push_back(base);
      }
    }
  }
  return specs;
}

// Field-by-field comparison so a regression names the quantity that diverged.
void expect_identical(const ExperimentResult& a, const ExperimentResult& b,
                      std::size_t i) {
  SCOPED_TRACE("spec index " + std::to_string(i));
  EXPECT_EQ(a.ops, b.ops);
  EXPECT_EQ(a.sim_cycles, b.sim_cycles);
  EXPECT_EQ(a.throughput_mops, b.throughput_mops);
  EXPECT_EQ(a.aborts_per_op, b.aborts_per_op);
  EXPECT_EQ(a.commits, b.commits);
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_EQ(a.fallbacks, b.fallbacks);
  EXPECT_EQ(a.aborts_total, b.aborts_total);
  EXPECT_EQ(a.aborts_conflict, b.aborts_conflict);
  EXPECT_EQ(a.aborts_capacity, b.aborts_capacity);
  EXPECT_EQ(a.aborts_other, b.aborts_other);
  EXPECT_EQ(a.conflicts_true_same_record, b.conflicts_true_same_record);
  EXPECT_EQ(a.conflicts_false_record, b.conflicts_false_record);
  EXPECT_EQ(a.conflicts_false_metadata, b.conflicts_false_metadata);
  EXPECT_EQ(a.conflicts_lock_subscription, b.conflicts_lock_subscription);
  EXPECT_EQ(a.upper_aborts, b.upper_aborts);
  EXPECT_EQ(a.lower_aborts, b.lower_aborts);
  EXPECT_EQ(a.mono_aborts, b.mono_aborts);
  EXPECT_EQ(a.mem_accesses, b.mem_accesses);
  EXPECT_EQ(a.instructions_per_op, b.instructions_per_op);
  EXPECT_EQ(a.wasted_cycle_frac, b.wasted_cycle_frac);
  EXPECT_EQ(a.mem_total, b.mem_total);
  EXPECT_EQ(a.mem_reserved, b.mem_reserved);
  EXPECT_EQ(a.mem_ccm, b.mem_ccm);
}

TEST(ParallelDriver, SequentialIsRepeatable) {
  const auto specs = small_sweep();
  const auto a = run_sim_experiments(specs, 1);
  const auto b = run_sim_experiments(specs, 1);
  ASSERT_EQ(a.size(), specs.size());
  ASSERT_EQ(b.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) expect_identical(a[i], b[i], i);
}

TEST(ParallelDriver, ParallelMatchesSequentialBitForBit) {
  const auto specs = small_sweep();
  const auto seq = run_sim_experiments(specs, 1);
  const auto par = run_sim_experiments(specs, 4);
  ASSERT_EQ(par.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    expect_identical(seq[i], par[i], i);
  }
}

TEST(ParallelDriver, MatchesSingleExperimentRunner) {
  // The sweep runner is a drop-in for a loop over run_sim_experiment.
  auto specs = small_sweep();
  specs.resize(3);
  const auto batch = run_sim_experiments(specs, 2);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    expect_identical(run_sim_experiment(specs[i]), batch[i], i);
  }
}

TEST(ParallelDriver, EdgeCases) {
  EXPECT_TRUE(run_sim_experiments({}, 4).empty());
  EXPECT_GE(default_jobs(), 1);

  // More jobs than specs: workers beyond the spec count find nothing to do.
  auto specs = small_sweep();
  specs.resize(2);
  const auto seq = run_sim_experiments(specs, 1);
  const auto par = run_sim_experiments(specs, 16);
  ASSERT_EQ(par.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    expect_identical(seq[i], par[i], i);
  }
}

}  // namespace
}  // namespace euno::driver
