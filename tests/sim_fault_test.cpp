// HTM fault-injection framework tests: every fault kind fires, is counted,
// and is seed-deterministic — the same spec reproduces bit-identical stats
// and a byte-identical run manifest.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "driver/experiment.hpp"
#include "obs/manifest.hpp"
#include "obs/options.hpp"
#include "trees/registry.hpp"

namespace euno::tests {
namespace {

driver::ExperimentSpec base_spec() {
  driver::ExperimentSpec spec;
  spec.tree = driver::TreeKind::kHtmBPTree;
  spec.threads = 4;
  spec.workload.key_range = 1 << 10;
  spec.workload.mix = workload::OpMix{50, 50, 0, 0};
  spec.preload = 256;
  spec.ops_per_thread = 400;
  spec.machine.arena_bytes = 128ull << 20;
  return spec;
}

void expect_same_counters(const driver::ExperimentResult& a,
                          const driver::ExperimentResult& b) {
  EXPECT_EQ(a.sim_cycles, b.sim_cycles);
  EXPECT_EQ(a.commits, b.commits);
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_EQ(a.fallbacks, b.fallbacks);
  EXPECT_EQ(a.aborts_total, b.aborts_total);
  EXPECT_EQ(a.aborts_conflict, b.aborts_conflict);
  EXPECT_EQ(a.aborts_capacity, b.aborts_capacity);
  EXPECT_EQ(a.aborts_other, b.aborts_other);
  EXPECT_EQ(a.lock_wait_cycles, b.lock_wait_cycles);
  EXPECT_EQ(a.backoff_cycles, b.backoff_cycles);
  EXPECT_EQ(a.faults_spurious, b.faults_spurious);
  EXPECT_EQ(a.faults_burst, b.faults_burst);
  EXPECT_EQ(a.faults_lock_delay, b.faults_lock_delay);
  EXPECT_EQ(a.fault_capacity_phases, b.fault_capacity_phases);
}

std::string slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  std::stringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

// ---- spurious aborts ----

TEST(SimFault, SpuriousAbortsFireAndAreCounted) {
  auto spec = base_spec();
  spec.machine.fault.spurious_abort_bp = 50;  // 0.5% per transactional access
  const auto r = run_sim_experiment(spec);
  EXPECT_GT(r.faults_spurious, 0u);
  // Spurious aborts surface as kOther (interrupt-like), not as conflicts.
  EXPECT_GT(r.aborts_other, 0u);
  EXPECT_GT(r.commits, 0u);
}

TEST(SimFault, SpuriousCampaignIsSeedDeterministic) {
  auto spec = base_spec();
  spec.machine.fault.spurious_abort_bp = 50;
  const auto a = run_sim_experiment(spec);
  const auto b = run_sim_experiment(spec);
  expect_same_counters(a, b);
  // A different fault seed must draw a different abort pattern (with these
  // access counts a collision would be astronomically unlikely).
  auto spec2 = spec;
  spec2.machine.fault.seed = spec.machine.fault.seed + 1;
  const auto c = run_sim_experiment(spec2);
  EXPECT_NE(a.faults_spurious, c.faults_spurious);
}

TEST(SimFault, FaultRngDoesNotPerturbTheBaseline) {
  // A fault config with zero probabilities must leave the run bit-identical
  // to one with no fault config at all.
  auto spec = base_spec();
  const auto base = run_sim_experiment(spec);
  auto spec2 = base_spec();
  spec2.machine.fault.seed = 12345;  // any() still false
  const auto r = run_sim_experiment(spec2);
  expect_same_counters(base, r);
}

// ---- capacity schedules ----

TEST(SimFault, CapacityShrinkForcesCapacityAborts) {
  auto spec = base_spec();
  // Healthy capacity at first, then the effective read set collapses.
  spec.machine.fault.capacity_schedule = {{20000, 1, 4}};
  const auto r = run_sim_experiment(spec);
  EXPECT_EQ(r.fault_capacity_phases, 1u);
  EXPECT_GT(r.aborts_capacity, 0u);
  EXPECT_GT(r.fallbacks, 0u);  // capacity gives up fast → lock rescues
  EXPECT_GT(r.commits, 0u);

  const auto b = run_sim_experiment(spec);
  expect_same_counters(r, b);
}

TEST(SimFault, CapacityScheduleCanRecover) {
  auto spec = base_spec();
  spec.machine.fault.capacity_schedule = {{10000, 1, 4}, {60000, 512, 4096}};
  const auto r = run_sim_experiment(spec);
  EXPECT_EQ(r.fault_capacity_phases, 2u);
  EXPECT_GT(r.aborts_capacity, 0u);
}

// ---- abort bursts ----

TEST(SimFault, AbortBurstDoomsBegins) {
  auto spec = base_spec();
  spec.machine.fault.bursts = {{5000, 30000, 100}};
  const auto r = run_sim_experiment(spec);
  EXPECT_GT(r.faults_burst, 0u);
  // Burst aborts surface as explicit aborts (payload kFaultInjected), which
  // land in the "other" decomposition bucket.
  EXPECT_GT(r.aborts_other, 0u);
  EXPECT_GT(r.commits, 0u);

  const auto b = run_sim_experiment(spec);
  expect_same_counters(r, b);
}

TEST(SimFault, PartialBurstAbortsFewerThanFullBurst) {
  auto spec = base_spec();
  spec.machine.fault.bursts = {{0, 1u << 30, 100}};
  const auto full = run_sim_experiment(spec);
  auto spec2 = base_spec();
  spec2.machine.fault.bursts = {{0, 1u << 30, 30}};
  const auto partial = run_sim_experiment(spec2);
  EXPECT_GT(full.faults_burst, partial.faults_burst);
  EXPECT_GT(partial.faults_burst, 0u);
  // Under a 100% burst no transaction ever commits under HTM: every commit
  // is a fallback commit.
  EXPECT_GT(full.commits, 0u);
  EXPECT_EQ(full.commits, full.fallbacks);
}

// ---- lock-holder delay ----

TEST(SimFault, LockHolderDelayInflatesWaiting) {
  auto spec = base_spec();
  spec.policy.conflict_retries = 0;  // drive traffic through the fallback lock
  spec.policy.capacity_retries = 0;
  spec.policy.other_retries = 0;
  spec.machine.htm.mutual_abort_pct = 100;
  spec.machine.fault.lock_hold_delay_pct = 100;
  spec.machine.fault.lock_hold_delay_cycles = 2000;
  const auto r = run_sim_experiment(spec);
  EXPECT_GT(r.faults_lock_delay, 0u);
  EXPECT_GT(r.fallbacks, 0u);

  auto no_delay = spec;
  no_delay.machine.fault.lock_hold_delay_pct = 0;
  no_delay.machine.fault.lock_hold_delay_cycles = 0;
  const auto base = run_sim_experiment(no_delay);
  // Held-longer locks stretch the run.
  EXPECT_GT(r.sim_cycles, base.sim_cycles);

  const auto b = run_sim_experiment(spec);
  expect_same_counters(r, b);
}

// The delay scenario only makes sense for trees that can acquire the global
// fallback lock, and caps.has_global_fallback is the registry's word on
// which those are. Sweep every registered tree under a maximally hostile
// config (zero retry budgets, 100% mutual aborts, every lock hold delayed):
// gated-in trees must record delayed holds; gated-out trees must record
// none — a nonzero count there means the capability bit lies about the
// tree's synchronization structure.
TEST(SimFault, LockHolderDelayGatedByGlobalFallbackCap) {
  for (const trees::TreeEntry& e : trees::tree_registry().entries()) {
    auto spec = base_spec();
    spec.tree = e.kind;
    spec.policy.conflict_retries = 0;
    spec.policy.capacity_retries = 0;
    spec.policy.other_retries = 0;
    spec.machine.htm.mutual_abort_pct = 100;
    spec.machine.fault.lock_hold_delay_pct = 100;
    spec.machine.fault.lock_hold_delay_cycles = 2000;
    const auto r = run_sim_experiment(spec);
    // Non-HTM trees log no transaction counters at all, so "the scenario
    // ran" is only visible on the simulated clock.
    EXPECT_GT(r.sim_cycles, 0u) << e.name << ": scenario ran no work";
    if (e.caps.has_global_fallback) {
      EXPECT_GT(r.faults_lock_delay, 0u)
          << e.name << ": has_global_fallback set but the hostile campaign "
                       "never delayed a lock holder";
    } else {
      EXPECT_EQ(r.faults_lock_delay, 0u)
          << e.name << ": tree claims no global fallback but acquired the "
                       "fallback lock";
      std::printf("  [gated-out] %s: no global fallback lock, delay "
                  "scenario skipped by caps\n",
                  e.name.c_str());
    }
  }
}

// ---- replayable manifests ----

TEST(SimFault, ManifestIsByteIdenticalAcrossReplays) {
  auto spec = base_spec();
  spec.machine.fault.spurious_abort_bp = 40;
  spec.machine.fault.bursts = {{8000, 20000, 100}};
  spec.machine.fault.capacity_schedule = {{30000, 2, 16}};
  const auto a = run_sim_experiment(spec);
  const auto b = run_sim_experiment(spec);

  const std::string pa = "sim_fault_manifest_a.json";
  const std::string pb = "sim_fault_manifest_b.json";
  ASSERT_TRUE(obs::write_manifest(pa, "sim_fault_test", &spec, &a, 1));
  ASSERT_TRUE(obs::write_manifest(pb, "sim_fault_test", &spec, &b, 1));
  const std::string ca = slurp(pa);
  const std::string cb = slurp(pb);
  ASSERT_FALSE(ca.empty());
  EXPECT_EQ(ca, cb) << "same spec must serialize byte-identically";
  // The manifest records the campaign itself, so the run is replayable from
  // the artifact alone.
  EXPECT_NE(ca.find("\"fault\""), std::string::npos);
  EXPECT_NE(ca.find("\"spurious_abort_bp\":40"), std::string::npos);
  EXPECT_NE(ca.find("\"bursts\""), std::string::npos);
  EXPECT_NE(ca.find("\"capacity_schedule\""), std::string::npos);
  std::remove(pa.c_str());
  std::remove(pb.c_str());
}

// ---- trace attribution ----

TEST(SimFault, TraceRecordsFaultInstants) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "obs compiled out";
  auto spec = base_spec();
  spec.machine.fault.bursts = {{0, 1u << 30, 100}};
  spec.obs.trace = true;
  const auto r = run_sim_experiment(spec);
  ASSERT_FALSE(r.trace.empty());
  std::uint64_t fault_events = 0;
  for (const auto& ev : r.trace.merged()) {
    if (static_cast<obs::EventCode>(ev.code) == obs::EventCode::kFaultInjected) {
      ++fault_events;
      EXPECT_EQ(static_cast<obs::FaultArg>(ev.arg_a), obs::FaultArg::kBurst);
    }
  }
  EXPECT_GT(fault_events, 0u);
}

}  // namespace
}  // namespace euno::tests
