// RCU-HTM epoch-reclamation battery.
//
// The policy's safety contract has two halves: readers pinned across
// concurrent splices must never observe a freed node, and every retired
// node must eventually be freed exactly once. The tests attack both from
// three directions — a direct EpochManager unit check, deterministic
// simulator stresses (including an abort-burst fault campaign whose retire
// counts must reconcile between the tree-level epoch manager, the per-ctx
// TxStats, and the run manifest), and a real-thread native soak that
// scripts/ci.sh runs under ASAN, where a reclamation bug is a genuine
// use-after-free of operator-delete'd memory.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "ctx/native_ctx.hpp"
#include "ctx/sim_ctx.hpp"
#include "driver/experiment.hpp"
#include "obs/manifest.hpp"
#include "trees/rcubtree/rcu_bptree.hpp"
#include "util/epoch.hpp"
#include "util/rng.hpp"

namespace euno::tests {
namespace {

constexpr trees::Value pure_value(trees::Key k) { return k * 31 + 5; }

// ---- EpochManager unit semantics ----

// A reader pinned in an old epoch must block every free, no matter how many
// retirements and advance attempts pile up behind it; once the reader exits,
// the backlog drains and every pointer is freed exactly once.
TEST(EpochManagerUnit, PinnedReaderBlocksFreesUntilExit) {
  EpochManager mgr(2);
  std::set<void*> freed;
  auto deleter = [&freed](void* p) {
    EXPECT_TRUE(freed.insert(p).second) << "double free of " << p;
  };

  static char storage[400];
  mgr.enter(0);  // the reader, pinned at the initial epoch

  mgr.enter(1);
  // Well past the advance cadence: try_advance() fires several times, but
  // the reader's pin caps min_active_epoch at its entry epoch.
  for (int i = 0; i < 200; ++i) mgr.retire(1, &storage[i], deleter);
  EXPECT_EQ(mgr.retired_count(), 200u);
  EXPECT_EQ(mgr.freed_count(), 0u) << "freed under a pinned reader";
  mgr.exit(1);

  mgr.exit(0);  // reader leaves; the backlog becomes reclaimable

  // The next retirement burst crosses the cadence, advances the epoch past
  // the backlog, and frees it.
  mgr.enter(1);
  for (int i = 0; i < 200; ++i) mgr.retire(1, &storage[200 + i], deleter);
  mgr.exit(1);
  EXPECT_GT(mgr.freed_count(), 0u);
  EXPECT_LE(mgr.freed_count(), mgr.retired_count());

  mgr.drain_all();
  EXPECT_EQ(mgr.freed_count(), mgr.retired_count());
}

TEST(EpochManagerUnit, RetireDoesNotFreeInTheRetiringEpoch) {
  EpochManager mgr(1);
  int dummy;
  std::uint64_t freed = 0;
  mgr.enter(0);
  mgr.retire(0, &dummy, [&freed](void*) { ++freed; });
  // Still pinned in the retirement epoch: even an explicit advance attempt
  // must not free (min_active == retire epoch, and the rule is strict <).
  mgr.try_advance();
  EXPECT_EQ(freed, 0u);
  mgr.exit(0);
  mgr.drain_all();
  EXPECT_EQ(freed, 1u);
}

// ---- simulator stresses ----

struct SimStressResult {
  std::uint64_t stats_retired = 0;   // per-ctx TxStats, aggregated
  std::uint64_t tree_retired = 0;    // EpochManager::retired_count()
  std::uint64_t tree_freed_mid = 0;  // freed_count() before teardown
  std::uint64_t tree_freed_end = 0;  // freed_count() after destroy+drain
  std::uint64_t validation_failures = 0;
};

// Readers, scanners and splice-heavy writers on one RcuBPTree. Values are a
// pure function of the key and keys below kImmortal are preloaded and never
// erased, so a reader that lands on a freed (retired, reclaimed, reused)
// node surfaces as a wrong value, a vanished immortal key, or a scan-order
// violation at the op that observes it. Fibers preempt at every
// instrumented access, so reader pins routinely straddle whole splices.
SimStressResult run_sim_stress(const sim::FaultConfig& fault) {
  sim::MachineConfig cfg;
  cfg.arena_bytes = 256ull << 20;
  cfg.fault = fault;
  sim::Simulation simulation(cfg);
  ctx::SimCtx setup(simulation, 0);
  using Tree = trees::RcuBPTree<ctx::SimCtx>;
  Tree tree(setup, typename Tree::Options{});

  constexpr int kThreads = 6;
  constexpr int kOps = 220;
  constexpr trees::Key kImmortal = 48;
  constexpr trees::Key kRange = 512;
  for (trees::Key k = 0; k < kImmortal; ++k) {
    tree.put(setup, k, pure_value(k));
  }

  SimStressResult out;
  std::uint64_t retired_by[kThreads] = {};
  std::uint64_t vfail_by[kThreads] = {};
  for (int t = 0; t < kThreads; ++t) {
    simulation.spawn(t, [&, t](int core) {
      ctx::SimCtx c(simulation, core);
      Xoshiro256 rng(0x5EED + static_cast<std::uint64_t>(t));
      std::vector<trees::KV> buf(24);
      for (int i = 0; i < kOps; ++i) {
        const trees::Key k = rng.next_bounded(kRange);
        switch (rng.next_bounded(8)) {
          case 0:
          case 1:
          case 2:
            tree.put(c, k, pure_value(k));
            break;
          case 3:
            if (k >= kImmortal) (void)tree.erase(c, k);
            break;
          case 4: {
            // Immortal keys must stay visible with untorn values through
            // every concurrent splice.
            const trees::Key ik = rng.next_bounded(kImmortal);
            trees::Value v = 0;
            ASSERT_TRUE(tree.get(c, ik, &v)) << "immortal key " << ik
                                             << " vanished";
            ASSERT_EQ(v, pure_value(ik));
            break;
          }
          default: {
            if (rng.next_bounded(3) == 0) {
              const std::size_t n = tree.scan(c, k, buf.size(), buf.data());
              for (std::size_t j = 0; j < n; ++j) {
                ASSERT_EQ(buf[j].second, pure_value(buf[j].first));
                if (j > 0) {
                  ASSERT_LT(buf[j - 1].first, buf[j].first);
                }
              }
            } else {
              trees::Value v = 0;
              if (tree.get(c, k, &v)) {
                ASSERT_EQ(v, pure_value(k));
              }
            }
            break;
          }
        }
      }
      const htm::TxStats total = c.stats().total();
      retired_by[t] = total.epoch_retired;
      vfail_by[t] = total.validation_failures;
    });
  }
  simulation.run();

  for (int t = 0; t < kThreads; ++t) {
    out.stats_retired += retired_by[t];
    out.validation_failures += vfail_by[t];
  }
  // The preload splices retired through the setup ctx's stats.
  out.stats_retired += setup.stats().total().epoch_retired;
  out.validation_failures += setup.stats().total().validation_failures;
  out.tree_retired = tree.policy().epoch().retired_count();
  out.tree_freed_mid = tree.policy().epoch().freed_count();

  tree.check_invariants();
  ctx::SimCtx fin(simulation, 0);
  tree.destroy(fin);
  out.tree_freed_end = tree.policy().epoch().freed_count();
  return out;
}

TEST(RcuReclaim, PinnedReadersAcrossSplicesAndCountsReconcile) {
  const SimStressResult r = run_sim_stress(sim::FaultConfig{});
  // Every retire() increments exactly one ctx's TxStats counter, so the
  // aggregate must equal the epoch manager's own ledger.
  EXPECT_GT(r.tree_retired, 0u) << "stress never replaced a node";
  EXPECT_EQ(r.stats_retired, r.tree_retired);
  // Reclamation may lag (that is the point of epochs) but never run ahead,
  // and teardown must settle the ledger exactly.
  EXPECT_LE(r.tree_freed_mid, r.tree_retired);
  EXPECT_EQ(r.tree_freed_end, r.tree_retired);
}

TEST(RcuReclaim, AbortBurstCampaignReconcilesAndReplays) {
  sim::FaultConfig fault;
  fault.spurious_abort_bp = 40;
  fault.bursts = {{4000, 30000, 100}, {80000, 30000, 60}};
  const SimStressResult a = run_sim_stress(fault);
  EXPECT_GT(a.tree_retired, 0u);
  EXPECT_EQ(a.stats_retired, a.tree_retired);
  EXPECT_EQ(a.tree_freed_end, a.tree_retired);
  // The campaign is seed-deterministic: an identical run produces an
  // identical ledger, validation failures included.
  const SimStressResult b = run_sim_stress(fault);
  EXPECT_EQ(a.stats_retired, b.stats_retired);
  EXPECT_EQ(a.tree_freed_end, b.tree_freed_end);
  EXPECT_EQ(a.validation_failures, b.validation_failures);
}

// ---- manifest reconciliation through the driver ----

std::string slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  std::stringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

TEST(RcuReclaim, ManifestCarriesRetireCountersUnderFaults) {
  driver::ExperimentSpec spec;
  spec.tree = driver::TreeKind::kRcuBPTree;
  spec.threads = 4;
  spec.workload.key_range = 1 << 10;
  spec.workload.mix = workload::OpMix{50, 40, 10, 0};
  spec.preload = 256;
  spec.ops_per_thread = 400;
  spec.machine.arena_bytes = 128ull << 20;
  spec.machine.fault.bursts = {{5000, 30000, 100}};
  const auto r = run_sim_experiment(spec);
  EXPECT_GT(r.epoch_retired, 0u);
  EXPECT_GT(r.commits, 0u);

  const auto r2 = run_sim_experiment(spec);
  EXPECT_EQ(r.epoch_retired, r2.epoch_retired);
  EXPECT_EQ(r.validation_failures, r2.validation_failures);

  const std::string path = "rcu_reclaim_manifest.json";
  ASSERT_TRUE(obs::write_manifest(path, "rcu_reclaim_test", &spec, &r, 1));
  const std::string body = slurp(path);
  std::remove(path.c_str());
  ASSERT_FALSE(body.empty());
  // The conditional key must carry exactly the tree-level count...
  std::ostringstream want;
  want << "\"epoch_retired\":" << r.epoch_retired;
  EXPECT_NE(body.find(want.str()), std::string::npos) << body.substr(0, 400);

  // ...and must stay absent for trees that never retire, keeping the
  // pre-existing golden manifests byte-identical.
  auto plain = spec;
  plain.tree = driver::TreeKind::kHtmBPTree;
  const auto pr = run_sim_experiment(plain);
  const std::string ppath = "rcu_reclaim_plain_manifest.json";
  ASSERT_TRUE(obs::write_manifest(ppath, "rcu_reclaim_test", &plain, &pr, 1));
  const std::string pbody = slurp(ppath);
  std::remove(ppath.c_str());
  EXPECT_EQ(pbody.find("epoch_retired"), std::string::npos);
  EXPECT_EQ(pbody.find("validation_failures"), std::string::npos);
}

// ---- native soak (the ASAN target) ----

// Real threads, real operator delete: if a splice's retired node is freed
// while a pinned reader can still reach it, ASAN reports a use-after-free
// here. Value purity and immortal keys catch logically-stale reads even in
// non-ASAN builds.
TEST(RcuReclaim, NativeReadersNeverObserveFreedNodes) {
  ctx::NativeEnv env;
  ctx::NativeCtx setup(env, 0);
  using Tree = trees::RcuBPTree<ctx::NativeCtx>;
  Tree tree(setup, typename Tree::Options{});

  constexpr int kThreads = 8;
  constexpr int kOps = 30000;
  constexpr trees::Key kImmortal = 64;
  constexpr trees::Key kRange = 2048;
  for (trees::Key k = 0; k < kImmortal; ++k) {
    tree.put(setup, k, pure_value(k));
  }

  std::vector<std::thread> ws;
  for (int t = 0; t < kThreads; ++t) {
    ws.emplace_back([&, t] {
      ctx::NativeCtx c(env, t);
      Xoshiro256 rng(0xA5A + static_cast<std::uint64_t>(t));
      std::vector<trees::KV> buf(32);
      for (int i = 0; i < kOps; ++i) {
        const trees::Key k = rng.next_bounded(kRange);
        switch (rng.next_bounded(8)) {
          case 0:
          case 1:
          case 2:
            tree.put(c, k, pure_value(k));
            break;
          case 3:
            if (k >= kImmortal) (void)tree.erase(c, k);
            break;
          case 4: {
            const trees::Key ik = rng.next_bounded(kImmortal);
            trees::Value v = 0;
            if (!tree.get(c, ik, &v) || v != pure_value(ik)) {
              GTEST_FAIL() << "immortal key " << ik << " wrong/missing";
            }
            break;
          }
          case 5: {
            const std::size_t n = tree.scan(c, k, buf.size(), buf.data());
            for (std::size_t j = 0; j < n; ++j) {
              if (buf[j].second != pure_value(buf[j].first) ||
                  (j > 0 && buf[j - 1].first >= buf[j].first)) {
                GTEST_FAIL() << "scan corruption at key " << buf[j].first;
              }
            }
            break;
          }
          default: {
            trees::Value v = 0;
            if (tree.get(c, k, &v) && v != pure_value(k)) {
              GTEST_FAIL() << "value corruption key=" << k << " v=" << v;
            }
            break;
          }
        }
      }
    });
  }
  for (auto& w : ws) w.join();
  tree.check_invariants();

  const std::uint64_t retired = tree.policy().epoch().retired_count();
  EXPECT_GT(retired, 0u);
  EXPECT_LE(tree.policy().epoch().freed_count(), retired);
  ctx::NativeCtx fin(env, 0);
  tree.destroy(fin);
  EXPECT_EQ(tree.policy().epoch().freed_count(), retired);
}

}  // namespace
}  // namespace euno::tests
