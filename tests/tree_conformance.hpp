// Reusable conformance suite for the concurrent tree implementations.
//
// Every tree (HTM-B+Tree, Euno-B+Tree, OLC/"Masstree", HTM-Masstree) is
// exercised through the same battery: single-threaded oracle comparison
// against std::map, structural invariants after adversarial patterns,
// concurrent stress on the simulated multicore, and concurrent stress on
// native threads (real RTM when available).
//
// A TreeAdapter describes how to drive one tree type:
//   struct Adapter {
//     using Tree = ...;                                 // tree template inst.
//     static constexpr const char* kName;
//     template <class Ctx> static Tree<Ctx> make(Ctx&); // fresh tree
//   };
#pragma once

#include <gtest/gtest.h>

#include <map>
#include <thread>
#include <vector>

#include "ctx/native_ctx.hpp"
#include "ctx/sim_ctx.hpp"
#include "trees/common.hpp"
#include "util/rng.hpp"

namespace euno::tests {

using trees::KV;
using trees::Key;
using trees::Value;

inline sim::MachineConfig test_sim_config() {
  sim::MachineConfig cfg;
  cfg.arena_bytes = 256ull << 20;
  return cfg;
}

/// Oracle test: random interleaving of put/get/erase/scan mirrored into a
/// std::map, executed with a given ctx. (Single-threaded; works on both
/// engines — under simulation it runs outside fibers, uninstrumented.)
template <class Tree, class Ctx>
void run_oracle_workload(Tree& tree, Ctx& c, std::uint64_t seed, int ops,
                         std::uint64_t key_range) {
  std::map<Key, Value> oracle;
  Xoshiro256 rng(seed);
  std::vector<KV> scan_buf(64);
  for (int i = 0; i < ops; ++i) {
    const Key key = rng.next_bounded(key_range);
    switch (rng.next_bounded(10)) {
      case 0:
      case 1:
      case 2:
      case 3: {  // put
        const Value v = rng.next();
        tree.put(c, key, v);
        oracle[key] = v;
        break;
      }
      case 4:
      case 5:
      case 6: {  // get
        Value v = 0;
        const bool found = tree.get(c, key, &v);
        const auto it = oracle.find(key);
        ASSERT_EQ(found, it != oracle.end()) << "key=" << key << " op=" << i;
        if (found) {
          ASSERT_EQ(v, it->second) << "key=" << key;
        }
        break;
      }
      case 7:
      case 8: {  // erase
        const bool removed = tree.erase(c, key);
        ASSERT_EQ(removed, oracle.erase(key) > 0) << "key=" << key;
        break;
      }
      case 9: {  // scan
        const std::size_t n = tree.scan(c, key, scan_buf.size(), scan_buf.data());
        auto it = oracle.lower_bound(key);
        for (std::size_t j = 0; j < n; ++j, ++it) {
          ASSERT_NE(it, oracle.end());
          ASSERT_EQ(scan_buf[j].first, it->first) << "scan pos " << j;
          ASSERT_EQ(scan_buf[j].second, it->second);
        }
        if (n < scan_buf.size()) {
          ASSERT_EQ(it, oracle.end());
        }
        break;
      }
    }
  }
  // Final sweep: every oracle entry must be present with the right value.
  for (const auto& [k, v] : oracle) {
    Value got = 0;
    ASSERT_TRUE(tree.get(c, k, &got)) << "missing key " << k;
    ASSERT_EQ(got, v);
  }
}

/// Range/scan boundary conformance: a fixed shape with a dense block (with
/// modulo holes), an erased band spanning several leaves, and a sparse far
/// block — then scans aimed exactly at the edges: before the first key, on a
/// present key, into the erased gap, between the blocks, on/after the last
/// key, and with a limit that exactly matches the remaining population.
/// Every scan is checked against a std::map oracle (lower_bound semantics,
/// sorted output, and "short result implies end of tree").
template <class Tree, class Ctx>
void run_scan_boundary_workload(Tree& tree, Ctx& c) {
  std::map<Key, Value> oracle;
  for (Key k = 10; k < 300; ++k) {
    if (k % 3 == 0) continue;  // holes inside the dense block
    tree.put(c, k, k ^ 0xabcu);
    oracle[k] = k ^ 0xabcu;
  }
  for (Key k = 1000; k < 1400; k += 7) {
    tree.put(c, k, k * 5 + 1);
    oracle[k] = k * 5 + 1;
  }
  for (Key k = 100; k < 160; ++k) {  // erase a band across leaf boundaries
    tree.erase(c, k);
    oracle.erase(k);
  }

  std::vector<KV> buf(600);
  const auto check_scan = [&](Key start, std::size_t limit) {
    ASSERT_LE(limit, buf.size());
    const std::size_t n = tree.scan(c, start, limit, buf.data());
    ASSERT_LE(n, limit) << "start=" << start;
    auto it = oracle.lower_bound(start);
    for (std::size_t j = 0; j < n; ++j, ++it) {
      ASSERT_NE(it, oracle.end()) << "start=" << start << " pos=" << j;
      ASSERT_EQ(buf[j].first, it->first) << "start=" << start << " pos=" << j;
      ASSERT_EQ(buf[j].second, it->second) << "start=" << start;
      if (j > 0) ASSERT_GT(buf[j].first, buf[j - 1].first) << "unsorted scan";
    }
    if (n < limit) {
      ASSERT_EQ(it, oracle.end()) << "short scan must mean end, start=" << start;
    }
  };

  check_scan(0, 1);            // strictly before the first key
  check_scan(0, buf.size());   // the whole tree in one call
  check_scan(10, 1);           // exactly the first key
  check_scan(99, 8);           // last key before the erased band
  check_scan(100, 8);          // first erased key -> resumes after the gap
  check_scan(159, 8);          // last erased key
  check_scan(160, 8);          // first key after the gap
  check_scan(299, 4);          // dense block's upper edge
  check_scan(300, 4);          // between the blocks
  check_scan(1393, 4);         // the last key itself
  check_scan(1394, 4);         // past the last key -> empty
  check_scan(~0ull, 4);        // maximal start key
  check_scan(1000, oracle.size());  // limit == exact remaining population
  tree.check_invariants();
}

/// Chunked full-table sweep under simulation: scan the whole tree in chunks
/// of several sizes (including 1), resuming each chunk at last_key + 1, and
/// require the concatenation to equal the oracle exactly. Exercises the
/// cross-leaf resume path that single-shot scans never hit.
template <class Adapter>
void run_scan_chunk_sweep_sim(std::uint64_t seed) {
  sim::Simulation simulation(test_sim_config());
  ctx::SimCtx c(simulation, 0);
  auto tree = Adapter::make(c);

  std::map<Key, Value> oracle;
  Xoshiro256 rng(seed);
  for (int i = 0; i < 3000; ++i) {
    const Key k = rng.next_bounded(5000);
    if (rng.next_bounded(4) == 0) {
      tree.erase(c, k);
      oracle.erase(k);
    } else {
      const Value v = rng.next();
      tree.put(c, k, v);
      oracle[k] = v;
    }
  }

  for (const std::size_t chunk : {std::size_t{1}, std::size_t{2}, std::size_t{7},
                                  std::size_t{16}, std::size_t{33},
                                  std::size_t{128}}) {
    std::vector<KV> buf(chunk);
    Key start = 0;
    std::size_t total = 0;
    auto it = oracle.begin();
    for (;;) {
      const std::size_t n = tree.scan(c, start, chunk, buf.data());
      for (std::size_t j = 0; j < n; ++j, ++it) {
        ASSERT_NE(it, oracle.end()) << "chunk=" << chunk;
        ASSERT_EQ(buf[j].first, it->first) << "chunk=" << chunk;
        ASSERT_EQ(buf[j].second, it->second) << "chunk=" << chunk;
      }
      total += n;
      if (n < chunk) break;
      if (buf[n - 1].first == ~0ull) break;
      start = buf[n - 1].first + 1;
    }
    ASSERT_EQ(it, oracle.end()) << "chunk=" << chunk;
    ASSERT_EQ(total, oracle.size()) << "chunk=" << chunk;
  }
  tree.check_invariants();
  tree.destroy(c);
}

/// Concurrent stress under simulation: `threads` fibers, each owning a
/// disjoint key stripe (for exact verification) plus a shared hot set (for
/// contention). Afterwards every striped key must be present with its final
/// value and invariants must hold.
template <class Adapter>
void run_sim_concurrent_stress(int threads, int ops_per_thread,
                               std::uint64_t hot_keys, std::uint64_t seed) {
  sim::Simulation simulation(test_sim_config());
  ctx::SimCtx setup(simulation, 0);
  auto tree = Adapter::make(setup);

  constexpr std::uint64_t kStripe = 1u << 20;
  for (int t = 0; t < threads; ++t) {
    simulation.spawn(t, [&, t](int core) {
      ctx::SimCtx c(simulation, core);
      Xoshiro256 rng(seed + static_cast<std::uint64_t>(t));
      for (int i = 0; i < ops_per_thread; ++i) {
        if (rng.next_bounded(2) == 0) {
          // Private stripe: key encodes (thread, i) so the final value is
          // deterministic per key.
          const Key key = kStripe * (static_cast<std::uint64_t>(t) + 1) +
                          rng.next_bounded(256);
          tree.put(c, key, key * 7);
        } else {
          // Shared hot set: contention.
          const Key key = rng.next_bounded(hot_keys);
          if (rng.next_bounded(3) == 0) {
            Value v;
            (void)tree.get(c, key, &v);
          } else {
            tree.put(c, key, (static_cast<Value>(t) << 32) | i);
          }
        }
      }
    });
  }
  simulation.run();

  tree.check_invariants();
  ctx::SimCtx verify(simulation, 0);
  for (int t = 0; t < threads; ++t) {
    Xoshiro256 rng(seed + static_cast<std::uint64_t>(t));
    // Replay the stream to learn which striped keys were written.
    std::map<Key, Value> mine;
    for (int i = 0; i < ops_per_thread; ++i) {
      if (rng.next_bounded(2) == 0) {
        const Key key = kStripe * (static_cast<std::uint64_t>(t) + 1) +
                        rng.next_bounded(256);
        mine[key] = key * 7;
      } else {
        rng.next_bounded(hot_keys);
        if (rng.next_bounded(3) != 0) {
          // matches the put branch's value computation draw order
        }
      }
    }
    for (const auto& [k, v] : mine) {
      Value got = 0;
      ASSERT_TRUE(tree.get(verify, k, &got)) << "lost striped key " << k;
      ASSERT_EQ(got, v);
    }
  }
  tree.destroy(verify);
}

/// Concurrent stress with real threads on the native engine.
template <class Adapter>
void run_native_concurrent_stress(int threads, int ops_per_thread,
                                  std::uint64_t hot_keys, std::uint64_t seed) {
  ctx::NativeEnv env;
  ctx::NativeCtx setup(env, 0);
  auto tree = Adapter::make(setup);

  constexpr std::uint64_t kStripe = 1u << 20;
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      ctx::NativeCtx c(env, t);
      Xoshiro256 rng(seed + static_cast<std::uint64_t>(t));
      for (int i = 0; i < ops_per_thread; ++i) {
        if (rng.next_bounded(2) == 0) {
          const Key key = kStripe * (static_cast<std::uint64_t>(t) + 1) +
                          rng.next_bounded(256);
          tree.put(c, key, key * 7);
        } else {
          const Key key = rng.next_bounded(hot_keys);
          if (rng.next_bounded(3) == 0) {
            Value v;
            (void)tree.get(c, key, &v);
          } else {
            tree.put(c, key, (static_cast<Value>(t) << 32) | i);
          }
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  tree.check_invariants();
  ctx::NativeCtx verify(env, 0);
  for (int t = 0; t < threads; ++t) {
    Xoshiro256 rng(seed + static_cast<std::uint64_t>(t));
    std::map<Key, Value> mine;
    for (int i = 0; i < ops_per_thread; ++i) {
      if (rng.next_bounded(2) == 0) {
        const Key key = kStripe * (static_cast<std::uint64_t>(t) + 1) +
                        rng.next_bounded(256);
        mine[key] = key * 7;
      } else {
        rng.next_bounded(hot_keys);
        rng.next_bounded(3);  // keep the replayed stream in sync
      }
    }
    for (const auto& [k, v] : mine) {
      Value got = 0;
      ASSERT_TRUE(tree.get(verify, k, &got)) << "lost striped key " << k;
      ASSERT_EQ(got, v);
    }
  }
  tree.destroy(verify);
}

/// Registers the full conformance battery for one adapter.
#define EUNO_TREE_CONFORMANCE_SUITE(SuiteName, NativeAdapter, SimAdapter)          \
  TEST(SuiteName, OracleSmallNative) {                                             \
    ctx::NativeEnv env;                                                            \
    ctx::NativeCtx c(env, 0);                                                      \
    auto tree = NativeAdapter::make(c);                                            \
    euno::tests::run_oracle_workload(tree, c, 101, 4000, 200);                     \
    tree.check_invariants();                                                       \
    tree.destroy(c);                                                               \
  }                                                                                \
  TEST(SuiteName, OracleLargeNative) {                                             \
    ctx::NativeEnv env;                                                            \
    ctx::NativeCtx c(env, 0);                                                      \
    auto tree = NativeAdapter::make(c);                                            \
    euno::tests::run_oracle_workload(tree, c, 202, 20000, 5000);                   \
    tree.check_invariants();                                                       \
    tree.destroy(c);                                                               \
  }                                                                                \
  TEST(SuiteName, OracleSim) {                                                     \
    sim::Simulation simulation(euno::tests::test_sim_config());                    \
    ctx::SimCtx c(simulation, 0);                                                  \
    auto tree = SimAdapter::make(c);                                               \
    euno::tests::run_oracle_workload(tree, c, 303, 8000, 1000);                    \
    tree.check_invariants();                                                       \
    tree.destroy(c);                                                               \
  }                                                                                \
  TEST(SuiteName, SequentialInsertGrowsHeight) {                                   \
    ctx::NativeEnv env;                                                            \
    ctx::NativeCtx c(env, 0);                                                      \
    auto tree = NativeAdapter::make(c);                                            \
    for (Key k = 0; k < 5000; ++k) tree.put(c, k, k + 1);                          \
    tree.check_invariants();                                                       \
    for (Key k = 0; k < 5000; ++k) {                                               \
      Value v = 0;                                                                 \
      ASSERT_TRUE(tree.get(c, k, &v));                                             \
      ASSERT_EQ(v, k + 1);                                                         \
    }                                                                              \
    tree.destroy(c);                                                               \
  }                                                                                \
  TEST(SuiteName, ReverseInsert) {                                                 \
    ctx::NativeEnv env;                                                            \
    ctx::NativeCtx c(env, 0);                                                      \
    auto tree = NativeAdapter::make(c);                                            \
    for (Key k = 5000; k > 0; --k) tree.put(c, k, k);                              \
    tree.check_invariants();                                                       \
    for (Key k = 1; k <= 5000; ++k) {                                              \
      Value v = 0;                                                                 \
      ASSERT_TRUE(tree.get(c, k, &v));                                             \
    }                                                                              \
    tree.destroy(c);                                                               \
  }                                                                                \
  TEST(SuiteName, ScanBoundaryNative) {                                            \
    ctx::NativeEnv env;                                                            \
    ctx::NativeCtx c(env, 0);                                                      \
    auto tree = NativeAdapter::make(c);                                            \
    euno::tests::run_scan_boundary_workload(tree, c);                              \
    tree.destroy(c);                                                               \
  }                                                                                \
  TEST(SuiteName, ScanChunkedSweepSim) {                                           \
    euno::tests::run_scan_chunk_sweep_sim<SimAdapter>(404);                        \
  }                                                                                \
  TEST(SuiteName, SimConcurrentStress) {                                           \
    euno::tests::run_sim_concurrent_stress<SimAdapter>(8, 400, 64, 42);            \
  }                                                                                \
  TEST(SuiteName, SimConcurrentStressManyCores) {                                  \
    euno::tests::run_sim_concurrent_stress<SimAdapter>(20, 200, 16, 43);           \
  }                                                                                \
  TEST(SuiteName, NativeConcurrentStress) {                                        \
    euno::tests::run_native_concurrent_stress<NativeAdapter>(4, 3000, 64, 44);     \
  }

}  // namespace euno::tests
