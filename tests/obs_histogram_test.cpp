// Unit tests for the log-bucketed latency histogram: exact bucket-boundary
// behavior, percentile semantics, and merge.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "obs/histogram.hpp"

namespace euno::obs {
namespace {

TEST(Histogram, UnitBucketsBelowSubResolution) {
  // Values below 2^kSubBits = 32 land in exact unit buckets.
  for (std::uint64_t v = 0; v < LatencyHistogram::kSub; ++v) {
    EXPECT_EQ(LatencyHistogram::bucket_of(v), v);
    EXPECT_EQ(LatencyHistogram::bucket_lower_bound(
                  LatencyHistogram::bucket_of(v)),
              v);
  }
}

TEST(Histogram, LowerBoundRoundTripsAtBoundaries) {
  // For every octave boundary and its neighbors: bucket_lower_bound of
  // bucket_of(v) must be <= v, and v must be below the next bucket's bound.
  std::vector<std::uint64_t> probes;
  for (int e = 5; e < LatencyHistogram::kMaxExp; ++e) {
    const std::uint64_t base = 1ull << e;
    probes.insert(probes.end(), {base - 1, base, base + 1});
    // sub-bucket width at this octave
    const std::uint64_t w = base >> LatencyHistogram::kSubBits;
    probes.insert(probes.end(), {base + w - 1, base + w, base + 3 * w + 7});
  }
  for (std::uint64_t v : probes) {
    const auto idx = LatencyHistogram::bucket_of(v);
    ASSERT_LT(idx, LatencyHistogram::kBuckets) << "v=" << v;
    const auto lower = LatencyHistogram::bucket_lower_bound(idx);
    EXPECT_LE(lower, v) << "v=" << v;
    if (idx + 1 < LatencyHistogram::kBuckets) {
      EXPECT_GT(LatencyHistogram::bucket_lower_bound(idx + 1), v) << "v=" << v;
    }
  }
}

TEST(Histogram, LowerBoundsAreStrictlyMonotonic) {
  for (std::uint32_t i = 1; i < LatencyHistogram::kBuckets; ++i) {
    EXPECT_LT(LatencyHistogram::bucket_lower_bound(i - 1),
              LatencyHistogram::bucket_lower_bound(i))
        << "i=" << i;
  }
}

TEST(Histogram, HugeValuesClampIntoTopBucket) {
  const auto top = LatencyHistogram::kBuckets - 1;
  EXPECT_EQ(LatencyHistogram::bucket_of(~0ull), top);
  EXPECT_EQ(LatencyHistogram::bucket_of(1ull << LatencyHistogram::kMaxExp),
            top);
}

TEST(Histogram, RelativeErrorBoundedBySubBucketWidth) {
  // The HDR guarantee: bucket lower bound is within one sub-bucket width
  // (2^-kSubBits ≈ 3.1%) of the recorded value.
  for (std::uint64_t v : {100ull, 999ull, 12345ull, 1048577ull, 987654321ull}) {
    const auto lower =
        LatencyHistogram::bucket_lower_bound(LatencyHistogram::bucket_of(v));
    EXPECT_LE(static_cast<double>(v - lower) / static_cast<double>(v),
              1.0 / LatencyHistogram::kSub)
        << "v=" << v;
  }
}

TEST(Histogram, CountSumMaxMean) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(0.5), 0u);
  h.record(10);
  h.record(20);
  h.record(30);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 60u);
  EXPECT_EQ(h.max(), 30u);
  EXPECT_DOUBLE_EQ(h.mean(), 20.0);
}

TEST(Histogram, PercentilesOnExactUnitValues) {
  // 1..100 in unit buckets: nearest-rank percentiles are exact.
  LatencyHistogram h;
  for (std::uint64_t v = 1; v <= 31; ++v) h.record(v);
  EXPECT_EQ(h.percentile(0.0), 1u);
  EXPECT_EQ(h.percentile(0.5), 16u);
  EXPECT_EQ(h.percentile(1.0), 31u);
}

TEST(Histogram, PercentileReturnsBucketLowerBound) {
  LatencyHistogram h;
  for (int i = 0; i < 99; ++i) h.record(100);
  h.record(1000000);
  const auto p50 = h.percentile(0.50);
  EXPECT_EQ(p50, LatencyHistogram::bucket_lower_bound(
                     LatencyHistogram::bucket_of(100)));
  const auto p999 = h.percentile(0.999);
  EXPECT_EQ(p999, LatencyHistogram::bucket_lower_bound(
                      LatencyHistogram::bucket_of(1000000)));
  // p99 with 100 samples: rank 99 of 100 still falls in the 100s.
  EXPECT_EQ(h.percentile(0.98), p50);
}

TEST(Histogram, MergeAddsCounts) {
  LatencyHistogram a, b;
  a.record(5);
  a.record(50);
  b.record(500);
  b.record(5000);
  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.sum(), 5555u);
  EXPECT_EQ(a.max(), 5000u);
  EXPECT_EQ(a.percentile(0.0), 5u);
  EXPECT_GE(a.percentile(1.0), LatencyHistogram::bucket_lower_bound(
                                   LatencyHistogram::bucket_of(5000)));
}

TEST(Histogram, ResetClearsEverything) {
  LatencyHistogram h;
  h.record(42);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.percentile(0.99), 0u);
}

TEST(Histogram, ForEachBucketVisitsInValueOrder) {
  LatencyHistogram h;
  h.record(3);
  h.record(3);
  h.record(70000);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> seen;
  h.for_each_bucket([&](std::uint64_t lower, std::uint64_t count) {
    seen.emplace_back(lower, count);
  });
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].first, 3u);
  EXPECT_EQ(seen[0].second, 2u);
  EXPECT_LE(seen[1].first, 70000u);
  EXPECT_EQ(seen[1].second, 1u);
}

}  // namespace
}  // namespace euno::obs
