// Tests for the execution-context layer: the txn() retry/fallback protocol on
// both engines, lock subscription, statistics, and allocation.
#include <gtest/gtest.h>

#include <vector>

#include "ctx/native_ctx.hpp"
#include "ctx/sim_ctx.hpp"

namespace euno::ctx {
namespace {

sim::MachineConfig small_config() {
  sim::MachineConfig cfg;
  cfg.arena_bytes = 16ull << 20;
  return cfg;
}

struct SharedCell {
  FallbackLock lock;
  std::uint64_t counter = 0;
};

SharedCell* make_shared_cell(SimCtx& c) {
  auto* cell = static_cast<SharedCell*>(
      c.alloc(sizeof(SharedCell), MemClass::kOther, sim::LineKind::kOther));
  new (cell) SharedCell();
  c.tag_memory(&cell->lock, sizeof(FallbackLock), sim::LineKind::kFallbackLock);
  return cell;
}

TEST(SimTxn, CommitsAndCounts) {
  sim::Simulation simulation(small_config());
  htm::RetryPolicy policy;
  SimCtx setup(simulation, 0);
  SharedCell* cell = make_shared_cell(setup);

  std::vector<SiteStats> stats(4);
  for (int core = 0; core < 4; ++core) {
    simulation.spawn(core, [&, core](int) {
      SimCtx c(simulation, core);
      for (int i = 0; i < 500; ++i) {
        c.txn(TxSite::kMono, cell->lock, policy,
              [&] { c.write(cell->counter, c.read(cell->counter) + 1); });
      }
      stats[core] = c.stats();
    });
  }
  simulation.run();
  EXPECT_EQ(cell->counter, 2000u);
  htm::TxStats total;
  for (const auto& s : stats) total += s.at(TxSite::kMono);
  EXPECT_EQ(total.commits, 2000u);
  EXPECT_GE(total.attempts, total.commits);
}

TEST(SimTxn, ContendedCounterGeneratesConflictAborts) {
  sim::Simulation simulation(small_config());
  htm::RetryPolicy policy;
  SimCtx setup(simulation, 0);
  SharedCell* cell = make_shared_cell(setup);

  std::uint64_t aborts = 0;
  std::vector<SiteStats> stats(8);
  for (int core = 0; core < 8; ++core) {
    simulation.spawn(core, [&, core](int) {
      SimCtx c(simulation, core);
      for (int i = 0; i < 300; ++i) {
        c.txn(TxSite::kMono, cell->lock, policy,
              [&] { c.write(cell->counter, c.read(cell->counter) + 1); });
      }
      stats[core] = c.stats();
    });
  }
  simulation.run();
  EXPECT_EQ(cell->counter, 2400u);
  for (const auto& s : stats) aborts += s.at(TxSite::kMono).total_aborts();
  EXPECT_GT(aborts, 0u) << "8 cores hammering one line must conflict";
}

TEST(SimTxn, ExplicitAbortGoesToFallback) {
  sim::Simulation simulation(small_config());
  htm::RetryPolicy policy;
  policy.other_retries = 1;
  SimCtx setup(simulation, 0);
  SharedCell* cell = make_shared_cell(setup);

  bool fallback_seen = false;
  SiteStats stats;
  simulation.spawn(0, [&](int) {
    SimCtx c(simulation, 0);
    c.txn(TxSite::kMono, cell->lock, policy, [&] {
      if (!c.in_fallback()) c.tx_abort_user();
      fallback_seen = true;
      c.write(cell->counter, std::uint64_t{11});
    });
    stats = c.stats();
  });
  simulation.run();
  EXPECT_TRUE(fallback_seen);
  EXPECT_EQ(cell->counter, 11u);
  EXPECT_EQ(stats.at(TxSite::kMono).fallbacks, 1u);
  EXPECT_EQ(
      stats.at(TxSite::kMono).aborts[static_cast<int>(htm::AbortReason::kExplicit)],
      2u);
}

TEST(SimTxn, FallbackAcquisitionAbortsSubscribedTx) {
  sim::Simulation simulation(small_config());
  htm::RetryPolicy policy;
  SimCtx setup(simulation, 0);
  SharedCell* cell = make_shared_cell(setup);

  SiteStats stats0;
  // Core 0 runs a long transaction; core 1 grabs the fallback lock
  // non-transactionally. Core 0's subscription read must get it aborted.
  simulation.spawn(0, [&](int) {
    SimCtx c(simulation, 0);
    c.txn(TxSite::kMono, cell->lock, policy, [&] {
      c.read(cell->counter);
      c.compute(20000);  // long pause: core 1 takes the lock meanwhile
      c.write(cell->counter, c.read(cell->counter) + 1);
    });
    stats0 = c.stats();
  });
  simulation.spawn(1, [&](int) {
    SimCtx c(simulation, 1);
    c.compute(2000);  // let core 0 begin and subscribe first
    // Acquire/release the fallback lock directly (as a fallback path would).
    while (!c.cas<std::uint32_t>(cell->lock.word, 0, 1)) c.spin_pause();
    c.compute(100);
    c.atomic_store<std::uint32_t>(cell->lock.word, 0);
  });
  simulation.run();
  const auto& st = stats0.at(TxSite::kMono);
  EXPECT_EQ(cell->counter, 1u);
  EXPECT_GE(st.total_aborts(), 1u);
  EXPECT_GE(st.conflicts[static_cast<int>(htm::ConflictKind::kLockSubscription)], 1u)
      << "subscription conflict must be classified as lock_subscription";
}

TEST(SimTxn, WastedCyclesAccountedOnAbort) {
  sim::Simulation simulation(small_config());
  htm::RetryPolicy policy;
  policy.other_retries = 0;
  SimCtx setup(simulation, 0);
  SharedCell* cell = make_shared_cell(setup);

  simulation.spawn(0, [&](int) {
    SimCtx c(simulation, 0);
    c.txn(TxSite::kMono, cell->lock, policy, [&] {
      c.compute(500);
      if (!c.in_fallback()) c.tx_abort_user();
    });
  });
  simulation.run();
  EXPECT_GE(simulation.counters(0).cycles_wasted, 500u);
}

TEST(SimTxn, SiteStatsSeparated) {
  sim::Simulation simulation(small_config());
  htm::RetryPolicy policy;
  SimCtx setup(simulation, 0);
  SharedCell* cell = make_shared_cell(setup);

  SiteStats stats;
  simulation.spawn(0, [&](int) {
    SimCtx c(simulation, 0);
    c.txn(TxSite::kUpper, cell->lock, policy, [&] { c.read(cell->counter); });
    c.txn(TxSite::kLower, cell->lock, policy, [&] { c.read(cell->counter); });
    c.txn(TxSite::kLower, cell->lock, policy, [&] { c.read(cell->counter); });
    stats = c.stats();
  });
  simulation.run();
  EXPECT_EQ(stats.at(TxSite::kUpper).commits, 1u);
  EXPECT_EQ(stats.at(TxSite::kLower).commits, 2u);
  EXPECT_EQ(stats.total().commits, 3u);
}

TEST(SimCtx, AtomicsRoundTrip) {
  sim::Simulation simulation(small_config());
  SimCtx setup(simulation, 0);
  auto* a = static_cast<std::atomic<std::uint8_t>*>(
      setup.alloc(1, MemClass::kOther, sim::LineKind::kOther));
  new (a) std::atomic<std::uint8_t>(0);

  simulation.spawn(0, [&](int) {
    SimCtx c(simulation, 0);
    EXPECT_TRUE(c.cas<std::uint8_t>(*a, 0, 1));
    EXPECT_FALSE(c.cas<std::uint8_t>(*a, 0, 1));
    EXPECT_EQ(c.fetch_or<std::uint8_t>(*a, 0x10), 0x01);
    EXPECT_EQ(c.atomic_load(*a), 0x11);
    EXPECT_EQ(c.fetch_and<std::uint8_t>(*a, std::uint8_t(~0x10)), 0x11);
    c.atomic_store<std::uint8_t>(*a, 0);
  });
  simulation.run();
  EXPECT_EQ(a->load(), 0);
}

TEST(SimCtx, CasInsideTxnRollsBack) {
  sim::Simulation simulation(small_config());
  htm::RetryPolicy policy;
  policy.other_retries = 0;
  SimCtx setup(simulation, 0);
  SharedCell* cell = make_shared_cell(setup);
  auto* flag = static_cast<std::atomic<std::uint64_t>*>(
      setup.alloc(8, MemClass::kOther, sim::LineKind::kOther));
  new (flag) std::atomic<std::uint64_t>(0);

  simulation.spawn(0, [&](int) {
    SimCtx c(simulation, 0);
    c.txn(TxSite::kMono, cell->lock, policy, [&] {
      if (!c.in_fallback()) {
        c.cas<std::uint64_t>(*flag, 0, 77);
        c.tx_abort_user();
      }
    });
  });
  simulation.run();
  EXPECT_EQ(flag->load(), 0u) << "transactional CAS must roll back on abort";
}

TEST(SimCtx, AllocInsideAbortedTxnReleased) {
  sim::Simulation simulation(small_config());
  htm::RetryPolicy policy;
  policy.other_retries = 0;
  SimCtx setup(simulation, 0);
  SharedCell* cell = make_shared_cell(setup);
  const auto before = simulation.arena().bytes_in_use();

  simulation.spawn(0, [&](int) {
    SimCtx c(simulation, 0);
    c.txn(TxSite::kMono, cell->lock, policy, [&] {
      if (!c.in_fallback()) {
        (void)c.alloc(64, MemClass::kTreeMisc, sim::LineKind::kOther);
        c.tx_abort_user();
      }
    });
  });
  simulation.run();
  EXPECT_EQ(simulation.arena().bytes_in_use(), before);
}

// The same txn() discipline compiles and runs against the native context
// (exercised in more depth in rtm_test.cpp). Here: API parity smoke test.
TEST(CtxParity, SameTreeStyleBodyOnBothEngines) {
  auto body_test = [](auto& c, FallbackLock& lock, std::uint64_t& cell) {
    htm::RetryPolicy policy;
    c.txn(TxSite::kMono, lock, policy, [&] { c.write(cell, c.read(cell) + 1); });
  };

  // Native.
  NativeEnv env;
  NativeCtx nc(env, 0);
  FallbackLock nlock;
  std::uint64_t ncell = 0;
  body_test(nc, nlock, ncell);
  EXPECT_EQ(ncell, 1u);

  // Simulated.
  sim::Simulation simulation(small_config());
  SimCtx setup(simulation, 0);
  SharedCell* scell = make_shared_cell(setup);
  simulation.spawn(0, [&](int) {
    SimCtx c(simulation, 0);
    body_test(c, scell->lock, scell->counter);
  });
  simulation.run();
  EXPECT_EQ(scell->counter, 1u);
}

}  // namespace
}  // namespace euno::ctx
